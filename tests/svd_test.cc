#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::OrthonormalityError;
using ::ivmf::testing::RandomMatrix;

TEST(SvdTest, ReconstructsDiagonalMatrix) {
  const Matrix m = Matrix::Diagonal({3, 2, 1});
  const SvdResult svd = ComputeSvd(m);
  EXPECT_NEAR(svd.sigma[0], 3.0, 1e-10);
  EXPECT_NEAR(svd.sigma[1], 2.0, 1e-10);
  EXPECT_NEAR(svd.sigma[2], 1.0, 1e-10);
  EXPECT_TRUE(svd.Reconstruct().ApproxEquals(m, 1e-10));
}

TEST(SvdTest, SingularValuesAreSortedDescending) {
  Rng rng(2);
  const Matrix m = RandomMatrix(20, 12, rng);
  const SvdResult svd = ComputeSvd(m);
  for (size_t i = 1; i < svd.sigma.size(); ++i)
    EXPECT_GE(svd.sigma[i - 1], svd.sigma[i]);
}

TEST(SvdTest, SingularValuesAreNonNegative) {
  Rng rng(3);
  const Matrix m = RandomMatrix(8, 15, rng);
  for (double s : ComputeSvd(m).sigma) EXPECT_GE(s, 0.0);
}

TEST(SvdTest, FullRankReconstructionIsExact) {
  Rng rng(4);
  const Matrix m = RandomMatrix(10, 6, rng);
  EXPECT_LT((ComputeSvd(m).Reconstruct() - m).MaxAbs(), 1e-10);
}

TEST(SvdTest, WideMatrixReconstruction) {
  Rng rng(5);
  const Matrix m = RandomMatrix(6, 18, rng);
  EXPECT_LT((ComputeSvd(m).Reconstruct() - m).MaxAbs(), 1e-10);
}

TEST(SvdTest, FactorsAreOrthonormal) {
  Rng rng(6);
  const Matrix m = RandomMatrix(12, 9, rng);
  const SvdResult svd = ComputeSvd(m);
  EXPECT_LT(OrthonormalityError(svd.u), 1e-9);
  EXPECT_LT(OrthonormalityError(svd.v), 1e-9);
}

TEST(SvdTest, TruncationKeepsLargestComponents) {
  Rng rng(7);
  const Matrix m = RandomMatrix(10, 10, rng);
  const SvdResult full = ComputeSvd(m);
  const SvdResult truncated = ComputeSvd(m, 3);
  ASSERT_EQ(truncated.sigma.size(), 3u);
  for (size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(truncated.sigma[i], full.sigma[i], 1e-9);
}

TEST(SvdTest, TruncatedReconstructionIsBestLowRank) {
  Rng rng(8);
  const Matrix m = RandomMatrix(10, 8, rng);
  const SvdResult full = ComputeSvd(m);
  const SvdResult rank2 = ComputeSvd(m, 2);
  // Eckart–Young: residual norm equals the tail singular values.
  double tail = 0.0;
  for (size_t i = 2; i < full.sigma.size(); ++i)
    tail += full.sigma[i] * full.sigma[i];
  const Matrix residual = m - rank2.Reconstruct();
  EXPECT_NEAR(residual.FrobeniusNorm(), std::sqrt(tail), 1e-8);
}

TEST(SvdTest, RankDeficientMatrix) {
  // Outer product: rank 1.
  Matrix m(5, 4);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 4; ++j) m(i, j) = (i + 1.0) * (j + 1.0);
  const SvdResult svd = ComputeSvd(m);
  EXPECT_GT(svd.sigma[0], 1.0);
  for (size_t i = 1; i < svd.sigma.size(); ++i)
    EXPECT_NEAR(svd.sigma[i], 0.0, 1e-9);
  EXPECT_TRUE(svd.Reconstruct().ApproxEquals(m, 1e-9));
}

TEST(SvdTest, ZeroMatrixGivesZeroSigma) {
  const SvdResult svd = ComputeSvd(Matrix(4, 3));
  for (double s : svd.sigma) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(SvdTest, SingleElementMatrix) {
  const SvdResult svd = ComputeSvd(Matrix::FromRows({{-5.0}}));
  ASSERT_EQ(svd.sigma.size(), 1u);
  EXPECT_NEAR(svd.sigma[0], 5.0, 1e-12);
  EXPECT_TRUE(svd.Reconstruct().ApproxEquals(Matrix::FromRows({{-5.0}}), 1e-12));
}

TEST(SvdTest, MatchesGramEigenvalues) {
  Rng rng(9);
  const Matrix m = RandomMatrix(7, 5, rng);
  const SvdResult svd = ComputeSvd(m);
  // σ_i² are the eigenvalues of MᵀM; verify via trace.
  const Matrix gram = m.Transpose() * m;
  double trace = 0.0;
  for (size_t i = 0; i < gram.rows(); ++i) trace += gram(i, i);
  double sigma_sq = 0.0;
  for (double s : svd.sigma) sigma_sq += s * s;
  EXPECT_NEAR(trace, sigma_sq, 1e-9);
}

// Property sweep over shapes: reconstruction + orthonormality.
class SvdShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SvdShapeTest, ReconstructionAndOrthonormality) {
  const auto [n, m] = GetParam();
  Rng rng(500 + 31 * n + m);
  const Matrix a = RandomMatrix(n, m, rng, -2.0, 2.0);
  const SvdResult svd = ComputeSvd(a);
  EXPECT_LT((svd.Reconstruct() - a).MaxAbs(), 1e-9) << n << "x" << m;
  EXPECT_LT(OrthonormalityError(svd.v), 1e-8);
  EXPECT_LT(OrthonormalityError(svd.u), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapeTest,
    ::testing::Values(std::make_pair(2, 2), std::make_pair(5, 3),
                      std::make_pair(3, 5), std::make_pair(16, 16),
                      std::make_pair(40, 10), std::make_pair(10, 40),
                      std::make_pair(25, 24), std::make_pair(1, 8),
                      std::make_pair(8, 1)));

}  // namespace
}  // namespace ivmf
