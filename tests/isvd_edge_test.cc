// Edge cases and failure injection for the ISVD pipeline: degenerate
// shapes, zero matrices, extreme intervals, rank clamping, and numerical
// sanity (no NaN/Inf escapes).

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/accuracy.h"
#include "core/isvd.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomIntervalMatrix;

bool AllFinite(const Matrix& m) {
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j)
      if (!std::isfinite(m(i, j))) return false;
  return true;
}

bool ResultIsFinite(const IsvdResult& r) {
  if (!AllFinite(r.u.lower()) || !AllFinite(r.u.upper())) return false;
  if (!AllFinite(r.v.lower()) || !AllFinite(r.v.upper())) return false;
  for (const Interval& s : r.sigma)
    if (!std::isfinite(s.lo) || !std::isfinite(s.hi)) return false;
  return true;
}

class IsvdEdgeTest : public ::testing::TestWithParam<int> {};

TEST_P(IsvdEdgeTest, ZeroMatrix) {
  const IntervalMatrix zero(6, 8);
  const IsvdResult result = RunIsvd(GetParam(), zero, 3);
  EXPECT_TRUE(ResultIsFinite(result));
  for (const Interval& s : result.sigma) {
    EXPECT_NEAR(s.lo, 0.0, 1e-12);
    EXPECT_NEAR(s.hi, 0.0, 1e-12);
  }
  // Reconstruction of zero is zero.
  const IntervalMatrix recon = result.Reconstruct();
  EXPECT_NEAR(recon.lower().MaxAbs(), 0.0, 1e-9);
}

TEST_P(IsvdEdgeTest, RankOne) {
  Rng rng(1);
  const IntervalMatrix m = RandomIntervalMatrix(7, 9, rng);
  const IsvdResult result = RunIsvd(GetParam(), m, 1);
  EXPECT_EQ(result.rank(), 1u);
  EXPECT_TRUE(ResultIsFinite(result));
}

TEST_P(IsvdEdgeTest, RankClampedToMinDimension) {
  Rng rng(2);
  const IntervalMatrix m = RandomIntervalMatrix(4, 10, rng);
  const IsvdResult result = RunIsvd(GetParam(), m, 99);
  EXPECT_EQ(result.rank(), 4u);
  EXPECT_TRUE(ResultIsFinite(result));
}

TEST_P(IsvdEdgeTest, SingleRowMatrix) {
  Rng rng(3);
  const IntervalMatrix m = RandomIntervalMatrix(1, 6, rng);
  const IsvdResult result = RunIsvd(GetParam(), m, 1);
  EXPECT_EQ(result.u.rows(), 1u);
  EXPECT_EQ(result.v.rows(), 6u);
  EXPECT_TRUE(ResultIsFinite(result));
}

TEST_P(IsvdEdgeTest, SingleColumnMatrix) {
  Rng rng(4);
  const IntervalMatrix m = RandomIntervalMatrix(6, 1, rng);
  const IsvdResult result = RunIsvd(GetParam(), m, 1);
  EXPECT_EQ(result.u.rows(), 6u);
  EXPECT_EQ(result.v.rows(), 1u);
  EXPECT_TRUE(ResultIsFinite(result));
}

TEST_P(IsvdEdgeTest, HugeIntervalsStayFinite) {
  // Intervals spanning 6 orders of magnitude must not produce NaNs.
  Rng rng(5);
  IntervalMatrix m(8, 10);
  for (size_t i = 0; i < 8; ++i)
    for (size_t j = 0; j < 10; ++j) {
      const double lo = rng.Uniform(0.0, 1e-3);
      m.Set(i, j, Interval(lo, lo + rng.Uniform(0.0, 1e3)));
    }
  const IsvdResult result = RunIsvd(GetParam(), m, 4);
  EXPECT_TRUE(ResultIsFinite(result));
  const AccuracyReport report =
      DecompositionAccuracy(m, result.Reconstruct());
  EXPECT_TRUE(std::isfinite(report.harmonic_mean));
}

TEST_P(IsvdEdgeTest, NegativeValuedIntervals) {
  Rng rng(6);
  IntervalMatrix m(9, 7);
  for (size_t i = 0; i < 9; ++i)
    for (size_t j = 0; j < 7; ++j) {
      const double lo = rng.Uniform(-2.0, 0.0);
      m.Set(i, j, Interval(lo, lo + rng.Uniform(0.0, 1.0)));
    }
  const IsvdResult result = RunIsvd(GetParam(), m, 4);
  EXPECT_TRUE(ResultIsFinite(result));
  EXPECT_TRUE(result.u.IsProper());
  EXPECT_TRUE(result.v.IsProper());
}

TEST_P(IsvdEdgeTest, ConstantMatrix) {
  // Rank-1 structure with identical entries everywhere.
  IntervalMatrix m(5, 8);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 8; ++j) m.Set(i, j, Interval(1.0, 2.0));
  const IsvdResult result = RunIsvd(GetParam(), m, 2);
  EXPECT_TRUE(ResultIsFinite(result));
  // One dominant singular value, the second ~0.
  EXPECT_GT(result.sigma[0].hi, 1.0);
  EXPECT_LT(result.sigma[1].hi, 1e-6 * result.sigma[0].hi + 1e-9);
}

TEST_P(IsvdEdgeTest, DuplicatedColumnsAreHandled) {
  // Exactly repeated columns create degenerate singular values — the
  // alignment must still produce a valid permutation.
  Rng rng(7);
  IntervalMatrix m(10, 6);
  for (size_t i = 0; i < 10; ++i) {
    const double v = rng.Uniform(0.1, 1.0);
    for (size_t j = 0; j < 6; ++j) {
      m.Set(i, j, Interval(v, v + 0.1));  // all columns identical
    }
  }
  const IsvdResult result = RunIsvd(GetParam(), m, 3);
  EXPECT_TRUE(ResultIsFinite(result));
}

INSTANTIATE_TEST_SUITE_P(Strategies, IsvdEdgeTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(IsvdLanczosTest, LanczosSolverMatchesJacobiAccuracy) {
  Rng rng(8);
  const IntervalMatrix m = RandomIntervalMatrix(20, 60, rng, 0.2, 1.0, 0.5);
  IsvdOptions jacobi;
  jacobi.target = DecompositionTarget::kB;
  IsvdOptions lanczos = jacobi;
  lanczos.eig_solver = EigSolver::kLanczos;

  const double h_jacobi =
      DecompositionAccuracy(m, Isvd4(m, 8, jacobi).Reconstruct())
          .harmonic_mean;
  const double h_lanczos =
      DecompositionAccuracy(m, Isvd4(m, 8, lanczos).Reconstruct())
          .harmonic_mean;
  EXPECT_NEAR(h_jacobi, h_lanczos, 0.02);
}

TEST(IsvdLanczosTest, AutoSwitchesAtLowRank) {
  Rng rng(9);
  const IntervalMatrix m = RandomIntervalMatrix(15, 80, rng, 0.2, 1.0, 0.5);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.eig_solver = EigSolver::kAuto;
  options.gram_side = GramSide::kMtM;  // 80 x 80 Gram, rank 5 -> Lanczos
  const IsvdResult result = Isvd3(m, 5, options);
  EXPECT_EQ(result.rank(), 5u);
  const AccuracyReport report =
      DecompositionAccuracy(m, result.Reconstruct());
  EXPECT_GT(report.harmonic_mean, 0.2);
}

}  // namespace
}  // namespace ivmf
