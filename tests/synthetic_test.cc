#include "data/synthetic.h"

#include <gtest/gtest.h>

namespace ivmf {
namespace {

TEST(SyntheticTest, DimensionsMatchConfig) {
  Rng rng(1);
  SyntheticConfig config;
  config.rows = 13;
  config.cols = 27;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  EXPECT_EQ(m.rows(), 13u);
  EXPECT_EQ(m.cols(), 27u);
}

TEST(SyntheticTest, AllIntervalsAreProper) {
  Rng rng(2);
  const IntervalMatrix m =
      GenerateUniformIntervalMatrix(DefaultSyntheticConfig(), rng);
  EXPECT_TRUE(m.IsProper());
}

TEST(SyntheticTest, ScalarValueIsIntervalMinimum) {
  // Section 6.1.1: the interval replaces the scalar with [v, v + span].
  Rng rng(3);
  SyntheticConfig config;
  config.rows = 30;
  config.cols = 30;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j) {
      EXPECT_GE(m.At(i, j).lo, 0.0);
      EXPECT_GE(m.At(i, j).hi, m.At(i, j).lo);
    }
}

TEST(SyntheticTest, ZeroFractionControlsSparsity) {
  Rng rng(4);
  SyntheticConfig config;
  config.rows = 100;
  config.cols = 100;
  config.zero_fraction = 0.5;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  size_t zeros = 0;
  for (size_t i = 0; i < 100; ++i)
    for (size_t j = 0; j < 100; ++j)
      if (m.At(i, j).lo == 0.0 && m.At(i, j).hi == 0.0) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.5, 0.03);
}

TEST(SyntheticTest, FullDensityHasNoZeros) {
  Rng rng(5);
  SyntheticConfig config;
  config.rows = 50;
  config.cols = 50;
  config.zero_fraction = 0.0;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  for (size_t i = 0; i < 50; ++i)
    for (size_t j = 0; j < 50; ++j) EXPECT_GT(m.At(i, j).lo, 0.0);
}

TEST(SyntheticTest, IntervalDensityControlsIntervalShare) {
  Rng rng(6);
  SyntheticConfig config;
  config.rows = 100;
  config.cols = 100;
  config.interval_density = 0.25;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  size_t with_span = 0;
  for (size_t i = 0; i < 100; ++i)
    for (size_t j = 0; j < 100; ++j)
      if (m.At(i, j).Span() > 0.0) ++with_span;
  EXPECT_NEAR(static_cast<double>(with_span) / 10000.0, 0.25, 0.03);
}

TEST(SyntheticTest, IntensityBoundsSpan) {
  Rng rng(7);
  SyntheticConfig config;
  config.rows = 60;
  config.cols = 60;
  config.interval_intensity = 0.5;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  for (size_t i = 0; i < 60; ++i)
    for (size_t j = 0; j < 60; ++j)
      EXPECT_LE(m.At(i, j).Span(), 0.5 * m.At(i, j).lo + 1e-12);
}

TEST(SyntheticTest, ZeroIntensityGivesScalarMatrix) {
  Rng rng(8);
  SyntheticConfig config;
  config.interval_intensity = 0.0;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  EXPECT_DOUBLE_EQ(m.Span().MaxAbs(), 0.0);
}

TEST(SyntheticTest, DeterministicForSameRngState) {
  Rng a(9), b(9);
  const IntervalMatrix ma =
      GenerateUniformIntervalMatrix(DefaultSyntheticConfig(), a);
  const IntervalMatrix mb =
      GenerateUniformIntervalMatrix(DefaultSyntheticConfig(), b);
  EXPECT_TRUE(ma.ApproxEquals(mb, 0.0));
}

TEST(SyntheticTest, ValueRangeRespected) {
  Rng rng(10);
  SyntheticConfig config;
  config.value_min = 2.0;
  config.value_max = 3.0;
  config.interval_intensity = 0.0;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j) {
      EXPECT_GE(m.At(i, j).lo, 2.0);
      EXPECT_LT(m.At(i, j).lo, 3.0);
    }
}

}  // namespace
}  // namespace ivmf
