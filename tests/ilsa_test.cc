#include "align/ilsa.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "linalg/svd.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomMatrix;

// Builds an orthonormal basis from a random matrix via SVD.
Matrix RandomOrthonormal(size_t n, size_t r, Rng& rng) {
  return ComputeSvd(RandomMatrix(n, r, rng)).u;
}

TEST(PairwiseAbsCosineTest, IdenticalColumnsGiveOnes) {
  Rng rng(1);
  const Matrix v = RandomOrthonormal(10, 4, rng);
  const Matrix sim = PairwiseAbsCosine(v, v);
  for (size_t j = 0; j < 4; ++j) EXPECT_NEAR(sim(j, j), 1.0, 1e-10);
}

TEST(PairwiseAbsCosineTest, OrthogonalColumnsGiveZeros) {
  Rng rng(2);
  const Matrix v = RandomOrthonormal(10, 4, rng);
  const Matrix sim = PairwiseAbsCosine(v, v);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_NEAR(sim(i, j), 0.0, 1e-9);
      }
    }
  }
}

TEST(PairwiseAbsCosineTest, AbsoluteValueIsTaken) {
  Matrix a(2, 1), b(2, 1);
  a(0, 0) = 1.0;
  b(0, 0) = -1.0;
  EXPECT_NEAR(PairwiseAbsCosine(a, b)(0, 0), 1.0, 1e-12);
}

TEST(PairwiseAbsCosineTest, ZeroColumnGivesZeroSimilarity) {
  Matrix a(2, 1), b(2, 1);
  b(0, 0) = 1.0;
  EXPECT_DOUBLE_EQ(PairwiseAbsCosine(a, b)(0, 0), 0.0);
}

TEST(IlsaTest, IdentityWhenAlreadyAligned) {
  Rng rng(3);
  const Matrix v = RandomOrthonormal(12, 5, rng);
  const IlsaResult result = ComputeIlsa(v, v);
  for (size_t j = 0; j < 5; ++j) {
    EXPECT_EQ(result.mapping[j], j);
    EXPECT_FALSE(result.flip[j]);
    EXPECT_NEAR(result.pair_similarity[j], 1.0, 1e-9);
  }
  EXPECT_NEAR(result.total_similarity, 5.0, 1e-8);
}

TEST(IlsaTest, RecoversColumnPermutation) {
  Rng rng(4);
  const Matrix v = RandomOrthonormal(15, 4, rng);
  // v_min is v with columns cycled by one.
  Matrix shuffled(15, 4);
  for (size_t j = 0; j < 4; ++j) shuffled.SetCol(j, v.Col((j + 1) % 4));
  const IlsaResult result = ComputeIlsa(shuffled, v);
  // Column j of v matches column (j+3)%4 of shuffled... mapping[j] is the
  // min-side column pairing max column j; shuffled[:, (j-1)%4] == v[:, j].
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(result.mapping[j], (j + 3) % 4);
    EXPECT_NEAR(result.pair_similarity[j], 1.0, 1e-9);
  }
}

TEST(IlsaTest, DetectsSignFlips) {
  Rng rng(5);
  const Matrix v = RandomOrthonormal(10, 3, rng);
  Matrix negated = v;
  for (size_t i = 0; i < 10; ++i) negated(i, 1) = -v(i, 1);
  const IlsaResult result = ComputeIlsa(negated, v);
  EXPECT_FALSE(result.flip[0]);
  EXPECT_TRUE(result.flip[1]);
  EXPECT_FALSE(result.flip[2]);
}

TEST(IlsaTest, FlipDisabledWhenOptionCleared) {
  Rng rng(6);
  const Matrix v = RandomOrthonormal(10, 3, rng);
  Matrix negated = v;
  for (size_t i = 0; i < 10; ++i) negated(i, 0) = -v(i, 0);
  IlsaOptions options;
  options.fix_directions = false;
  const IlsaResult result = ComputeIlsa(negated, v, options);
  EXPECT_FALSE(result.flip[0]);
}

TEST(IlsaTest, ApplyIlsaRealignsColumns) {
  Rng rng(7);
  const Matrix v = RandomOrthonormal(12, 4, rng);
  // Scramble: permute columns and flip one sign.
  Matrix scrambled(12, 4);
  const size_t perm[4] = {2, 0, 3, 1};
  for (size_t j = 0; j < 4; ++j) {
    const double sign = (j == 1) ? -1.0 : 1.0;
    for (size_t i = 0; i < 12; ++i) scrambled(i, perm[j]) = sign * v(i, j);
  }
  const IlsaResult result = ComputeIlsa(scrambled, v);
  const Matrix realigned = ApplyIlsaToColumns(scrambled, result);
  EXPECT_TRUE(realigned.ApproxEquals(v, 1e-9));
}

TEST(IlsaTest, ApplyIlsaToDiagonalPermutes) {
  IlsaResult result;
  result.mapping = {2, 0, 1};
  result.flip = {false, true, false};
  const std::vector<double> sigma = ApplyIlsaToDiagonal({10, 20, 30}, result);
  EXPECT_EQ(sigma, (std::vector<double>{30, 10, 20}));
}

TEST(IlsaTest, AllMatchersAgreeOnUnambiguousInstance) {
  Rng rng(8);
  const Matrix v = RandomOrthonormal(20, 6, rng);
  for (const AlignMatcher matcher :
       {AlignMatcher::kHungarian, AlignMatcher::kGreedy,
        AlignMatcher::kStableMarriage}) {
    IlsaOptions options;
    options.matcher = matcher;
    const IlsaResult result = ComputeIlsa(v, v, options);
    for (size_t j = 0; j < 6; ++j) EXPECT_EQ(result.mapping[j], j);
  }
}

TEST(IlsaTest, HungarianTotalSimilarityIsMaximal) {
  // On noisy pairs the Hungarian objective dominates greedy and stable.
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix v_min = RandomMatrix(8, 5, rng);
    const Matrix v_max = RandomMatrix(8, 5, rng);
    IlsaOptions hungarian;  // default
    IlsaOptions greedy;
    greedy.matcher = AlignMatcher::kGreedy;
    IlsaOptions stable;
    stable.matcher = AlignMatcher::kStableMarriage;
    const double h = ComputeIlsa(v_min, v_max, hungarian).total_similarity;
    const double g = ComputeIlsa(v_min, v_max, greedy).total_similarity;
    const double s = ComputeIlsa(v_min, v_max, stable).total_similarity;
    EXPECT_GE(h, g - 1e-9);
    EXPECT_GE(h, s - 1e-9);
  }
}

TEST(IlsaTest, AlignmentImprovesColumnwiseCosine) {
  // The Figure-3 property: after ILSA the per-column |cos| never falls and
  // typically rises for scrambled inputs.
  Rng rng(10);
  const Matrix v = RandomOrthonormal(16, 6, rng);
  Matrix scrambled(16, 6);
  const size_t perm[6] = {3, 5, 0, 4, 1, 2};
  for (size_t j = 0; j < 6; ++j) scrambled.SetCol(perm[j], v.Col(j));

  const std::vector<double> before = ColumnwiseCosine(scrambled, v);
  const IlsaResult ilsa = ComputeIlsa(scrambled, v);
  const Matrix aligned = ApplyIlsaToColumns(scrambled, ilsa);
  const std::vector<double> after = ColumnwiseCosine(aligned, v);

  double sum_before = 0.0, sum_after = 0.0;
  for (double c : before) sum_before += std::abs(c);
  for (double c : after) sum_after += std::abs(c);
  EXPECT_GT(sum_after, sum_before);
  for (double c : after) EXPECT_NEAR(c, 1.0, 1e-9);
}

TEST(ColumnwiseCosineTest, MatchesManualComputation) {
  const Matrix a = Matrix::FromRows({{1, 0}, {0, 1}});
  const Matrix b = Matrix::FromRows({{1, 0}, {0, -1}});
  const std::vector<double> cosines = ColumnwiseCosine(a, b);
  EXPECT_NEAR(cosines[0], 1.0, 1e-12);
  EXPECT_NEAR(cosines[1], -1.0, 1e-12);
}

class IlsaMatcherTest : public ::testing::TestWithParam<AlignMatcher> {};

TEST_P(IlsaMatcherTest, MappingIsAlwaysAPermutation) {
  Rng rng(11);
  IlsaOptions options;
  options.matcher = GetParam();
  for (int trial = 0; trial < 10; ++trial) {
    const Matrix v_min = RandomMatrix(10, 6, rng);
    const Matrix v_max = RandomMatrix(10, 6, rng);
    const IlsaResult result = ComputeIlsa(v_min, v_max, options);
    std::vector<bool> seen(6, false);
    for (size_t idx : result.mapping) {
      ASSERT_LT(idx, 6u);
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Matchers, IlsaMatcherTest,
                         ::testing::Values(AlignMatcher::kHungarian,
                                           AlignMatcher::kGreedy,
                                           AlignMatcher::kStableMarriage));

}  // namespace
}  // namespace ivmf
