// Perf-regression diff tests: the flat-record JSON parser accepts the
// JsonWriter shape and rejects structure it does not understand, records
// pair by workload identity (shape fields, not measurements), metric
// direction follows the documented name patterns, and the diff flags a
// synthetic 2x slowdown while tolerating noise-sized movement, sub-floor
// timings, and undirected counter drift.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "obs/bench_diff.h"

namespace ivmf::obs {
namespace {

std::vector<BenchRecord> MustParse(const std::string& json) {
  std::string error;
  auto records = ParseBenchRecords(json, &error);
  EXPECT_TRUE(records.has_value()) << error;
  return records.value_or(std::vector<BenchRecord>{});
}

TEST(ParseBenchRecordsTest, ParsesJsonWriterShape) {
  const std::vector<BenchRecord> records = MustParse(
      "[\n"
      "  {\"bench\": \"fig10\", \"users\": 2000, \"warm\": true, "
      "\"seconds\": 0.125, \"note\": null},\n"
      "  {\"bench\": \"fig10\", \"users\": 4000, \"warm\": false, "
      "\"seconds\": 0.5}\n"
      "]\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].at("bench").kind, BenchValue::Kind::kString);
  EXPECT_EQ(records[0].at("bench").text, "fig10");
  EXPECT_EQ(records[0].at("users").kind, BenchValue::Kind::kNumber);
  EXPECT_DOUBLE_EQ(records[0].at("users").number, 2000.0);
  EXPECT_TRUE(records[0].at("warm").boolean);
  EXPECT_EQ(records[0].at("note").kind, BenchValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(records[1].at("seconds").number, 0.5);
}

TEST(ParseBenchRecordsTest, EmptyArrayAndEscapes) {
  EXPECT_TRUE(MustParse("[]").empty());
  const std::vector<BenchRecord> records =
      MustParse("[{\"name\": \"BM_Multiply/2000\", \"q\": \"a\\\"b\"}]");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at("name").text, "BM_Multiply/2000");
  EXPECT_EQ(records[0].at("q").text, "a\"b");
}

TEST(ParseBenchRecordsTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseBenchRecords("", &error).has_value());
  EXPECT_FALSE(ParseBenchRecords("{\"a\": 1}", &error).has_value());
  // Nested structure is not a flat bench record.
  error.clear();
  EXPECT_FALSE(
      ParseBenchRecords("[{\"a\": {\"b\": 1}}]", &error).has_value());
  EXPECT_NE(error.find("nested"), std::string::npos) << error;
  EXPECT_FALSE(ParseBenchRecords("[{\"a\": 1}] trailing", &error).has_value());
  EXPECT_FALSE(ParseBenchRecords("[{\"a\": 1}", &error).has_value());
}

TEST(BenchRecordKeyTest, IdentityIsShapeNotMeasurement) {
  const std::vector<BenchRecord> records = MustParse(
      "[{\"bench\": \"fig10\", \"users\": 2000, \"rank\": 8, "
      "\"seconds\": 0.5, \"matvecs\": 120, \"warm\": true}]");
  const std::string key = BenchRecordKey(records[0]);
  EXPECT_NE(key.find("bench=fig10"), std::string::npos) << key;
  EXPECT_NE(key.find("users=2000"), std::string::npos) << key;
  EXPECT_NE(key.find("rank=8"), std::string::npos) << key;
  // Measurements and outcomes stay out of the identity.
  EXPECT_EQ(key.find("seconds"), std::string::npos) << key;
  EXPECT_EQ(key.find("matvecs"), std::string::npos) << key;
  EXPECT_EQ(key.find("warm"), std::string::npos) << key;
}

TEST(MetricDirectionTest, NamePatterns) {
  bool lower = false;
  ASSERT_TRUE(MetricDirection("refresh_seconds", &lower));
  EXPECT_TRUE(lower);
  ASSERT_TRUE(MetricDirection("p99_us", &lower));
  EXPECT_TRUE(lower);
  ASSERT_TRUE(MetricDirection("real_time_ns", &lower));
  EXPECT_TRUE(lower);
  ASSERT_TRUE(MetricDirection("items_per_second", &lower));
  EXPECT_FALSE(lower);
  ASSERT_TRUE(MetricDirection("throughput_ops", &lower));
  EXPECT_FALSE(lower);
  ASSERT_TRUE(MetricDirection("warm_hit_rate", &lower));
  EXPECT_FALSE(lower);
  // Memory footprint: growth regresses, like time.
  ASSERT_TRUE(MetricDirection("peak_rss_bytes", &lower));
  EXPECT_TRUE(lower);
  ASSERT_TRUE(MetricDirection("mapped_bytes", &lower));
  EXPECT_TRUE(lower);
  // Counters carry no direction, and neither does a single-sample extreme.
  EXPECT_FALSE(MetricDirection("matvecs", &lower));
  EXPECT_FALSE(MetricDirection("krylov_iterations", &lower));
  EXPECT_FALSE(MetricDirection("max_us", &lower));
}

// One baseline/candidate pair with a scaled time and throughput.
BenchDiffReport DiffScaled(double time_scale, double throughput_scale,
                           const BenchDiffOptions& options = {}) {
  const std::vector<BenchRecord> baseline = MustParse(
      "[{\"bench\": \"fig11\", \"readers\": 2, \"seconds\": 0.2, "
      "\"ops_per_second\": 50000, \"matvecs\": 100}]");
  char candidate_json[256];
  std::snprintf(candidate_json, sizeof(candidate_json),
                "[{\"bench\": \"fig11\", \"readers\": 2, \"seconds\": %.6f, "
                "\"ops_per_second\": %.1f, \"matvecs\": 100}]",
                0.2 * time_scale, 50000 * throughput_scale);
  return DiffBenchRecords(baseline, MustParse(candidate_json), options);
}

TEST(DiffBenchRecordsTest, TwoXSlowdownIsARegression) {
  const BenchDiffReport report = DiffScaled(2.0, 1.0);
  EXPECT_EQ(report.compared_records, 1u);
  EXPECT_TRUE(report.HasRegression());
  ASSERT_EQ(report.regressions(), 1u);
  for (const MetricDiff& diff : report.diffs) {
    if (diff.status == DiffStatus::kRegression) {
      EXPECT_EQ(diff.metric, "seconds");
      EXPECT_NEAR(diff.ratio, 2.0, 1e-9);
    }
  }
}

TEST(DiffBenchRecordsTest, NoiseSizedMovementPasses) {
  EXPECT_FALSE(DiffScaled(1.2, 0.9).HasRegression());
  EXPECT_FALSE(DiffScaled(0.5, 2.0).HasRegression());  // improvement
}

TEST(DiffBenchRecordsTest, ThroughputCollapseIsARegression) {
  const BenchDiffReport report = DiffScaled(1.0, 0.4);
  ASSERT_EQ(report.regressions(), 1u);
  for (const MetricDiff& diff : report.diffs) {
    if (diff.status == DiffStatus::kRegression) {
      EXPECT_EQ(diff.metric, "ops_per_second");
    }
  }
}

TEST(DiffBenchRecordsTest, ToleranceIsConfigurable) {
  BenchDiffOptions loose;
  loose.tolerance = 3.0;  // fail only past 4x
  EXPECT_FALSE(DiffScaled(2.0, 1.0, loose).HasRegression());
  EXPECT_TRUE(DiffScaled(5.0, 1.0, loose).HasRegression());
}

TEST(DiffBenchRecordsTest, SubFloorTimingsAreSkipped) {
  const std::vector<BenchRecord> baseline =
      MustParse("[{\"bench\": \"micro\", \"seconds\": 0.00002}]");
  const std::vector<BenchRecord> candidate =
      MustParse("[{\"bench\": \"micro\", \"seconds\": 0.0008}]");  // 40x!
  const BenchDiffReport report = DiffBenchRecords(baseline, candidate, {});
  EXPECT_FALSE(report.HasRegression());
  ASSERT_EQ(report.diffs.size(), 1u);
  EXPECT_EQ(report.diffs[0].status, DiffStatus::kSkipped);
}

TEST(DiffBenchRecordsTest, CounterDriftIsInformational) {
  const std::vector<BenchRecord> baseline =
      MustParse("[{\"bench\": \"b\", \"matvecs\": 100, \"seconds\": 0.2}]");
  const std::vector<BenchRecord> candidate =
      MustParse("[{\"bench\": \"b\", \"matvecs\": 900, \"seconds\": 0.2}]");
  const BenchDiffReport report = DiffBenchRecords(baseline, candidate, {});
  EXPECT_FALSE(report.HasRegression());
  bool saw_info = false;
  for (const MetricDiff& diff : report.diffs) {
    if (diff.metric == "matvecs") {
      EXPECT_EQ(diff.status, DiffStatus::kInfo);
      saw_info = true;
    }
  }
  EXPECT_TRUE(saw_info);
}

TEST(DiffBenchRecordsTest, MissingRecordsInformationalUnlessRequired) {
  const std::vector<BenchRecord> baseline = MustParse(
      "[{\"bench\": \"a\", \"seconds\": 0.1},"
      " {\"bench\": \"b\", \"seconds\": 0.1}]");
  const std::vector<BenchRecord> candidate =
      MustParse("[{\"bench\": \"a\", \"seconds\": 0.1}]");

  BenchDiffReport report = DiffBenchRecords(baseline, candidate, {});
  EXPECT_FALSE(report.HasRegression());
  EXPECT_EQ(report.compared_records, 1u);
  ASSERT_EQ(report.missing_records.size(), 1u);
  EXPECT_NE(report.missing_records[0].find("bench=b"), std::string::npos);

  BenchDiffOptions strict;
  strict.require_all = true;
  report = DiffBenchRecords(baseline, candidate, strict);
  EXPECT_TRUE(report.HasRegression());
}

TEST(DiffBenchRecordsTest, DuplicateIdentitiesPairInOrder) {
  // Repeated trials of one shape pair first-with-first.
  const std::vector<BenchRecord> baseline = MustParse(
      "[{\"bench\": \"t\", \"seconds\": 0.1},"
      " {\"bench\": \"t\", \"seconds\": 0.2}]");
  const std::vector<BenchRecord> candidate = MustParse(
      "[{\"bench\": \"t\", \"seconds\": 0.1},"
      " {\"bench\": \"t\", \"seconds\": 0.9}]");
  const BenchDiffReport report = DiffBenchRecords(baseline, candidate, {});
  EXPECT_EQ(report.compared_records, 2u);
  EXPECT_EQ(report.regressions(), 1u);  // only the 0.2 -> 0.9 pair
}

}  // namespace
}  // namespace ivmf::obs
