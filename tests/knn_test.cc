#include "eval/knn.h"

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

TEST(ConcatenateEndpointsTest, DoublesColumns) {
  IntervalMatrix m(2, 3);
  m.Set(0, 1, Interval(2, 5));
  const Matrix c = ConcatenateEndpoints(m);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 6u);
  EXPECT_DOUBLE_EQ(c(0, 1), 2.0);   // lower endpoint block
  EXPECT_DOUBLE_EQ(c(0, 4), 5.0);   // upper endpoint block
}

TEST(RowDistanceSquaredTest, KnownValue) {
  const Matrix a = Matrix::FromRows({{0, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(RowDistanceSquared(a, 0, a, 1), 25.0);
}

TEST(Classify1NnTest, PicksNearestLabel) {
  const Matrix train = Matrix::FromRows({{0, 0}, {10, 10}});
  const std::vector<int> labels{7, 9};
  const Matrix test = Matrix::FromRows({{1, 1}, {9, 9}});
  const std::vector<int> pred = Classify1Nn(train, labels, test);
  EXPECT_EQ(pred[0], 7);
  EXPECT_EQ(pred[1], 9);
}

TEST(Classify1NnTest, ExactMatchWinsAlways) {
  Rng rng(1);
  const Matrix train = ivmf::testing::RandomMatrix(20, 5, rng);
  std::vector<int> labels(20);
  for (int i = 0; i < 20; ++i) labels[i] = i;
  const std::vector<int> pred = Classify1Nn(train, labels, train);
  EXPECT_EQ(pred, labels);
}

TEST(Classify1NnIntervalTest, MatchesPaperDistanceDefinition) {
  // dist²([a_*,a^*],[b_*,b^*]) = (a_*-b_*)² + (a^*-b^*)².
  IntervalMatrix train(2, 1);
  train.Set(0, 0, Interval(0.0, 0.0));
  train.Set(1, 0, Interval(10.0, 12.0));
  IntervalMatrix test(1, 1);
  test.Set(0, 0, Interval(9.0, 11.0));  // clearly nearer the second row
  const std::vector<int> pred =
      Classify1NnInterval(train, {0, 1}, test);
  EXPECT_EQ(pred[0], 1);
}

TEST(Classify1NnIntervalTest, SpanInformationDisambiguates) {
  // Same midpoints, different spans: interval distance separates them.
  IntervalMatrix train(2, 1);
  train.Set(0, 0, Interval(4.0, 6.0));    // mid 5, span 2
  train.Set(1, 0, Interval(0.0, 10.0));   // mid 5, span 10
  IntervalMatrix test(1, 1);
  test.Set(0, 0, Interval(0.5, 9.5));     // near the wide interval
  const std::vector<int> pred = Classify1NnInterval(train, {0, 1}, test);
  EXPECT_EQ(pred[0], 1);
}

TEST(Classify1NnIntervalTest, DegenerateIntervalsReduceToScalar) {
  Rng rng(2);
  const Matrix features = ivmf::testing::RandomMatrix(15, 4, rng);
  std::vector<int> labels(15);
  for (int i = 0; i < 15; ++i) labels[i] = i % 3;
  const Matrix queries = ivmf::testing::RandomMatrix(5, 4, rng);
  const std::vector<int> scalar_pred = Classify1Nn(features, labels, queries);
  const std::vector<int> interval_pred =
      Classify1NnInterval(IntervalMatrix::FromScalar(features), labels,
                          IntervalMatrix::FromScalar(queries));
  EXPECT_EQ(scalar_pred, interval_pred);
}

}  // namespace
}  // namespace ivmf
