// The sharded decomposition route end to end: RunIsvd over a
// ShardedSparseIntervalMatrix must agree with the monolithic sparse route
// for every strategy 0-4 and both sign regimes — the sharded operators
// feed the unchanged Lanczos drivers, so only the reduction grouping of
// the Gram/transpose applies differs (roundoff, amplified through the
// eigensolve; the suite compares at the established sparse-vs-dense
// agreement bound). The monolithic reference pins GramSide::kMtM because
// the sharded route has no MMᵀ side (no transposed store exists).
// A second pass runs the mmap-backed store through the same harness — the
// out-of-core decompose path must be numerically indistinguishable from
// the in-memory one.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/sparse_isvd.h"
#include "sparse/block_matrix.h"
#include "sparse/shard_store.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {
namespace {

SparseIntervalMatrix MakeSparseFixture(size_t rows, size_t cols, double fill,
                                       bool signed_values, uint64_t seed) {
  Rng rng(seed);
  std::vector<IntervalTriplet> triplets;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (rng.Uniform() >= fill) continue;
      const double a =
          signed_values ? rng.Uniform(-2.0, 2.0) : rng.Uniform(0.5, 4.0);
      triplets.push_back({i, j, Interval(a, a + rng.Uniform())});
    }
  }
  return SparseIntervalMatrix::FromTriplets(rows, cols, std::move(triplets));
}

void ExpectResultsAgree(const IsvdResult& want, const IsvdResult& got,
                        double tol) {
  ASSERT_EQ(want.rank(), got.rank());
  for (size_t j = 0; j < want.rank(); ++j) {
    EXPECT_NEAR(want.sigma[j].lo, got.sigma[j].lo, tol) << "sigma " << j;
    EXPECT_NEAR(want.sigma[j].hi, got.sigma[j].hi, tol) << "sigma " << j;
  }
  const IntervalMatrix recon_want = want.Reconstruct();
  const IntervalMatrix recon_got = got.Reconstruct();
  EXPECT_TRUE(recon_got.ApproxEquals(recon_want, tol))
      << "max lower diff "
      << (recon_got.lower() - recon_want.lower()).MaxAbs()
      << ", max upper diff "
      << (recon_got.upper() - recon_want.upper()).MaxAbs();
}

class ShardedIsvdAgreement
    : public ::testing::TestWithParam<::testing::tuple<int, bool>> {};

TEST_P(ShardedIsvdAgreement, ShardedStrategyMatchesMonolithic) {
  const int strategy = ::testing::get<0>(GetParam());
  const bool signed_values = ::testing::get<1>(GetParam());

  const size_t rows = 120, cols = 40, rank = 5;
  const SparseIntervalMatrix mono = MakeSparseFixture(
      rows, cols, 0.2, signed_values,
      900 + 10 * static_cast<uint64_t>(strategy) + signed_values);
  ASSERT_EQ(mono.IsNonNegative(), !signed_values);

  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.eig_solver = EigSolver::kLanczos;
  // The sharded route is always MᵀM; pin the reference to the same side.
  options.gram_side = GramSide::kMtM;

  const IsvdResult reference = RunIsvd(strategy, mono, rank, options);

  // Unaligned partition: 120 rows in shards of 32 leaves a 24-row tail.
  const ShardedSparseIntervalMatrix sharded =
      ShardedSparseIntervalMatrix::FromCsr(mono, 32);
  ExpectResultsAgree(reference, RunIsvd(strategy, sharded, rank, options),
                     1e-8);

  const ShardedSparseIntervalMatrix mapped =
      ShardedSparseIntervalMatrix::FromCsr(mono, 32, BackingPolicy::Mmap());
  ASSERT_TRUE(mapped.mmap_backed());
  ExpectResultsAgree(reference, RunIsvd(strategy, mapped, rank, options),
                     1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSigns, ShardedIsvdAgreement,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4), ::testing::Bool()));

}  // namespace
}  // namespace ivmf
