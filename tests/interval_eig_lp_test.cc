#include "lp/interval_eig_lp.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "linalg/eig.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomSymmetric;

IntervalMatrix SymmetricIntervalAround(const Matrix& center, double radius) {
  Matrix lo = center, hi = center;
  for (size_t i = 0; i < center.rows(); ++i) {
    for (size_t j = 0; j < center.cols(); ++j) {
      lo(i, j) -= radius;
      hi(i, j) += radius;
    }
  }
  return IntervalMatrix(lo, hi);
}

TEST(IntervalEigLpTest, DegenerateMatrixRecoversPointSpectrum) {
  Rng rng(1);
  const Matrix a = RandomSymmetric(5, rng);
  const IntervalEigLpResult result =
      ComputeIntervalEigLp(IntervalMatrix::FromScalar(a), 0);
  const EigResult exact = ComputeSymmetricEig(a);
  ASSERT_EQ(result.eigenvalues.size(), exact.eigenvalues.size());
  for (size_t j = 0; j < exact.eigenvalues.size(); ++j) {
    // Zero radius -> zero perturbation bound.
    EXPECT_NEAR(result.eigenvalues[j].lo, exact.eigenvalues[j], 1e-8);
    EXPECT_NEAR(result.eigenvalues[j].hi, exact.eigenvalues[j], 1e-8);
  }
}

TEST(IntervalEigLpTest, EigenvalueIntervalsContainMidpointSpectrum) {
  Rng rng(2);
  const Matrix a = RandomSymmetric(6, rng);
  const IntervalMatrix ia = SymmetricIntervalAround(a, 0.05);
  const IntervalEigLpResult result = ComputeIntervalEigLp(ia, 0);
  const EigResult mid = ComputeSymmetricEig(a);
  for (size_t j = 0; j < mid.eigenvalues.size(); ++j) {
    EXPECT_LE(result.eigenvalues[j].lo, mid.eigenvalues[j] + 1e-9);
    EXPECT_GE(result.eigenvalues[j].hi, mid.eigenvalues[j] - 1e-9);
  }
}

TEST(IntervalEigLpTest, EigenvectorBoxesContainMidpointVectors) {
  Rng rng(3);
  const Matrix a = RandomSymmetric(5, rng);
  const IntervalMatrix ia = SymmetricIntervalAround(a, 0.02);
  const IntervalEigLpResult result = ComputeIntervalEigLp(ia, 0);
  const EigResult mid = ComputeSymmetricEig(a);
  // Up to sign, the midpoint eigenvector must lie in the LP box. The anchor
  // component fixes the sign, so compare directly after matching signs.
  for (size_t j = 0; j < mid.eigenvalues.size(); ++j) {
    // Find anchor = argmax |v|.
    size_t anchor = 0;
    for (size_t i = 1; i < 5; ++i)
      if (std::abs(mid.eigenvectors(i, j)) >
          std::abs(mid.eigenvectors(anchor, j)))
        anchor = i;
    const double sign =
        result.eigenvectors.At(anchor, j).Mid() * mid.eigenvectors(anchor, j) <
                0.0
            ? -1.0
            : 1.0;
    for (size_t i = 0; i < 5; ++i) {
      const Interval bound = result.eigenvectors.At(i, j);
      const double v = sign * mid.eigenvectors(i, j);
      EXPECT_GE(v, bound.lo - 1e-6);
      EXPECT_LE(v, bound.hi + 1e-6);
    }
  }
}

TEST(IntervalEigLpTest, WiderIntervalsGiveWiderEigenvalueBounds) {
  Rng rng(4);
  const Matrix a = RandomSymmetric(5, rng);
  const IntervalEigLpResult narrow =
      ComputeIntervalEigLp(SymmetricIntervalAround(a, 0.01), 0);
  const IntervalEigLpResult wide =
      ComputeIntervalEigLp(SymmetricIntervalAround(a, 0.5), 0);
  for (size_t j = 0; j < narrow.eigenvalues.size(); ++j) {
    EXPECT_LT(narrow.eigenvalues[j].Span(), wide.eigenvalues[j].Span());
  }
}

TEST(IntervalEigLpTest, LargeIntervalsBlowUpVectorBounds) {
  // The paper's central observation about LP competitors: with sizable
  // interval radii the eigenvector boxes become uninformative (span near
  // the full box).
  Rng rng(5);
  const Matrix a = RandomSymmetric(4, rng);
  const IntervalEigLpResult result =
      ComputeIntervalEigLp(SymmetricIntervalAround(a, 1.0), 0);
  double mean_span = 0.0;
  size_t count = 0;
  for (size_t j = 0; j < result.eigenvectors.cols(); ++j)
    for (size_t i = 0; i < result.eigenvectors.rows(); ++i) {
      mean_span += result.eigenvectors.At(i, j).Span();
      ++count;
    }
  mean_span /= static_cast<double>(count);
  EXPECT_GT(mean_span, 1.0);  // unit vectors have span <= 2 in any component
}

TEST(IntervalEigLpTest, RankTruncationLimitsPairCount) {
  Rng rng(6);
  const Matrix a = RandomSymmetric(6, rng);
  const IntervalEigLpResult result =
      ComputeIntervalEigLp(SymmetricIntervalAround(a, 0.05), 2);
  EXPECT_EQ(result.eigenvalues.size(), 2u);
  EXPECT_EQ(result.eigenvectors.cols(), 2u);
  EXPECT_EQ(result.eigenvectors.rows(), 6u);
}

TEST(IntervalEigLpTest, BoundsAreProperIntervals) {
  Rng rng(7);
  const Matrix a = RandomSymmetric(5, rng);
  const IntervalEigLpResult result =
      ComputeIntervalEigLp(SymmetricIntervalAround(a, 0.1), 0);
  EXPECT_TRUE(result.eigenvectors.IsProper());
  for (const Interval& lambda : result.eigenvalues)
    EXPECT_TRUE(lambda.IsProper());
}

}  // namespace
}  // namespace ivmf
