#include "factor/pmf.h"

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomMatrix;

// Rating-like low-rank matrix in roughly [1, 5].
Matrix RatingMatrix(size_t n, size_t m, size_t rank, Rng& rng) {
  const Matrix u = RandomMatrix(n, rank, rng, -0.6, 0.6);
  const Matrix v = RandomMatrix(m, rank, rng, -0.6, 0.6);
  Matrix r = u * v.Transpose();
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < m; ++j) r(i, j) = 3.0 + r(i, j);
  return r;
}

Matrix FullMask(size_t n, size_t m) { return Matrix(n, m, 1.0); }

TEST(PmfTest, LossDecreasesOverTraining) {
  Rng rng(1);
  const Matrix m = RatingMatrix(20, 15, 3, rng);
  const PmfResult result = ComputePmf(m, FullMask(20, 15), 3);
  EXPECT_LT(result.loss_history.back(), 0.5 * result.loss_history.front());
}

TEST(PmfTest, ReconstructionApproximatesObservedEntries) {
  Rng rng(2);
  const Matrix m = RatingMatrix(25, 20, 2, rng);
  PmfOptions options;
  options.epochs = 400;
  const PmfResult result = ComputePmf(m, FullMask(25, 20), 4, options);
  const double rel =
      (result.Reconstruct() - m).FrobeniusNorm() / m.FrobeniusNorm();
  EXPECT_LT(rel, 0.1);
}

TEST(PmfTest, MaskedEntriesDoNotDriveLoss) {
  Rng rng(3);
  const Matrix m = RatingMatrix(15, 12, 2, rng);
  // Mask half the entries; corrupt the masked-out ones wildly.
  Matrix mask(15, 12);
  Matrix corrupted = m;
  for (size_t i = 0; i < 15; ++i)
    for (size_t j = 0; j < 12; ++j) {
      if ((i + j) % 2 == 0) {
        mask(i, j) = 1.0;
      } else {
        corrupted(i, j) = 1000.0;  // must be ignored
      }
    }
  const PmfResult result = ComputePmf(corrupted, mask, 3);
  // Training converged (finite, decreasing loss) despite absurd hidden values.
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
  EXPECT_LT(result.Reconstruct().MaxAbs(), 100.0);
}

TEST(PmfTest, DeterministicForFixedSeed) {
  Rng rng(4);
  const Matrix m = RatingMatrix(10, 8, 2, rng);
  const PmfResult a = ComputePmf(m, FullMask(10, 8), 3);
  const PmfResult b = ComputePmf(m, FullMask(10, 8), 3);
  EXPECT_TRUE(a.u == b.u);
}

IntervalMatrix RatingIntervals(const Matrix& m, double delta) {
  Matrix lo = m, hi = m;
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j) {
      lo(i, j) -= delta;
      hi(i, j) += delta;
    }
  return IntervalMatrix(lo, hi);
}

TEST(IntervalPmfTest, LossDecreases) {
  Rng rng(5);
  const Matrix m = RatingMatrix(18, 14, 3, rng);
  const IntervalMatrix im = RatingIntervals(m, 0.4);
  const IntervalPmfResult result =
      ComputeIntervalPmf(im, FullMask(18, 14), 3);
  EXPECT_LT(result.loss_history.back(), 0.5 * result.loss_history.front());
}

TEST(IntervalPmfTest, ReconstructionTracksBothEndpoints) {
  Rng rng(6);
  const Matrix m = RatingMatrix(20, 16, 2, rng);
  const IntervalMatrix im = RatingIntervals(m, 0.5);
  PmfOptions options;
  options.epochs = 400;
  const IntervalPmfResult result =
      ComputeIntervalPmf(im, FullMask(20, 16), 4, options);
  const IntervalMatrix recon = result.Reconstruct();
  EXPECT_LT((recon.lower() - im.lower()).FrobeniusNorm() /
                im.lower().FrobeniusNorm(),
            0.15);
  EXPECT_LT((recon.upper() - im.upper()).FrobeniusNorm() /
                im.upper().FrobeniusNorm(),
            0.15);
}

TEST(IntervalPmfTest, PredictMidIsBetweenEndpointReconstructions) {
  Rng rng(7);
  const Matrix m = RatingMatrix(12, 10, 2, rng);
  const IntervalMatrix im = RatingIntervals(m, 0.3);
  const IntervalPmfResult result =
      ComputeIntervalPmf(im, FullMask(12, 10), 3);
  const IntervalMatrix recon = result.Reconstruct();
  const Matrix mid = result.PredictMid();
  for (size_t i = 0; i < 12; ++i)
    for (size_t j = 0; j < 10; ++j) {
      EXPECT_GE(mid(i, j), recon.At(i, j).lo - 1e-9);
      EXPECT_LE(mid(i, j), recon.At(i, j).hi + 1e-9);
    }
}

TEST(AiPmfTest, TrainingCompletesAndFits) {
  Rng rng(8);
  const Matrix m = RatingMatrix(18, 14, 3, rng);
  const IntervalMatrix im = RatingIntervals(m, 0.4);
  const IntervalPmfResult result =
      ComputeAlignedIntervalPmf(im, FullMask(18, 14), 3);
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
}

TEST(AiPmfTest, AlignmentKeepsFactorsFinite) {
  Rng rng(9);
  const Matrix m = RatingMatrix(15, 12, 2, rng);
  const IntervalMatrix im = RatingIntervals(m, 0.6);
  const IntervalPmfResult result =
      ComputeAlignedIntervalPmf(im, FullMask(15, 12), 4);
  EXPECT_LT(result.u.MaxAbs(), 1e3);
  EXPECT_LT(result.v_lo.MaxAbs(), 1e3);
  EXPECT_LT(result.v_hi.MaxAbs(), 1e3);
}

TEST(AiPmfTest, FinalAlignmentOnlyModeRuns) {
  Rng rng(10);
  const Matrix m = RatingMatrix(12, 10, 2, rng);
  const IntervalMatrix im = RatingIntervals(m, 0.3);
  PmfOptions options;
  options.align_every_epoch = false;
  const IntervalPmfResult result =
      ComputeAlignedIntervalPmf(im, FullMask(12, 10), 3, options);
  EXPECT_FALSE(result.loss_history.empty());
}

TEST(AiPmfTest, AlignedVsUnalignedShareShapes) {
  Rng rng(11);
  const Matrix m = RatingMatrix(10, 8, 2, rng);
  const IntervalMatrix im = RatingIntervals(m, 0.2);
  const IntervalPmfResult plain = ComputeIntervalPmf(im, FullMask(10, 8), 3);
  const IntervalPmfResult aligned =
      ComputeAlignedIntervalPmf(im, FullMask(10, 8), 3);
  EXPECT_EQ(plain.v_lo.rows(), aligned.v_lo.rows());
  EXPECT_EQ(plain.v_lo.cols(), aligned.v_lo.cols());
}

class PmfRankTest : public ::testing::TestWithParam<int> {};

TEST_P(PmfRankTest, HigherRankFitsNoWorse) {
  Rng rng(12);
  const Matrix m = RatingMatrix(20, 16, 4, rng);
  PmfOptions options;
  options.epochs = 200;
  const PmfResult result =
      ComputePmf(m, FullMask(20, 16), GetParam(), options);
  EXPECT_EQ(result.u.cols(), static_cast<size_t>(GetParam()));
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
}

INSTANTIATE_TEST_SUITE_P(Ranks, PmfRankTest, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace ivmf
