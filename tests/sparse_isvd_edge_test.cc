// Degenerate-input coverage for the sparse matrix-free ISVD path,
// mirroring the dense tests/isvd_edge_test.cc: empty shapes, all-zero
// matrices, rank clamping, all-zero rows, single row/column — the guards
// the sparse RunIsvd / LanczosSvd entry points previously lacked.

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/sparse_isvd.h"
#include "linalg/lanczos_svd.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {
namespace {

bool AllFinite(const Matrix& m) {
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j)
      if (!std::isfinite(m(i, j))) return false;
  return true;
}

bool ResultIsFinite(const IsvdResult& r) {
  if (!AllFinite(r.u.lower()) || !AllFinite(r.u.upper())) return false;
  if (!AllFinite(r.v.lower()) || !AllFinite(r.v.upper())) return false;
  for (const Interval& s : r.sigma)
    if (!std::isfinite(s.lo) || !std::isfinite(s.hi)) return false;
  return true;
}

// A random sparse non-negative interval matrix at the given fill.
SparseIntervalMatrix RandomSparse(size_t n, size_t m, double fill, Rng& rng) {
  std::vector<IntervalTriplet> triplets;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (!rng.Bernoulli(fill)) continue;
      const double lo = rng.Uniform(0.1, 1.0);
      triplets.push_back({i, j, Interval(lo, lo + rng.Uniform(0.0, 0.4))});
    }
  }
  return SparseIntervalMatrix::FromTriplets(n, m, std::move(triplets));
}

class SparseIsvdEdgeTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseIsvdEdgeTest, EmptyShapeReturnsRankZero) {
  // 0 x 0 and 0 x m / n x 0 shapes: a well-formed empty decomposition
  // instead of an abort inside the Krylov solver.
  for (const auto& [n, m] : {std::pair<size_t, size_t>{0, 0},
                             std::pair<size_t, size_t>{0, 7},
                             std::pair<size_t, size_t>{7, 0}}) {
    const SparseIntervalMatrix empty =
        SparseIntervalMatrix::FromTriplets(n, m, {});
    const IsvdResult result = RunIsvd(GetParam(), empty, 3);
    EXPECT_EQ(result.rank(), 0u);
    EXPECT_EQ(result.u.rows(), n);
    EXPECT_EQ(result.v.rows(), m);
    EXPECT_TRUE(ResultIsFinite(result));
  }
}

TEST_P(SparseIsvdEdgeTest, AllZeroMatrix) {
  // A shaped matrix with no stored entries (every cell the zero interval).
  const SparseIntervalMatrix zero = SparseIntervalMatrix::FromTriplets(6, 8, {});
  const IsvdResult result = RunIsvd(GetParam(), zero, 3);
  EXPECT_TRUE(ResultIsFinite(result));
  for (const Interval& s : result.sigma) {
    EXPECT_NEAR(s.lo, 0.0, 1e-12);
    EXPECT_NEAR(s.hi, 0.0, 1e-12);
  }
}

TEST_P(SparseIsvdEdgeTest, RankZeroMeansFullRank) {
  Rng rng(11);
  const SparseIntervalMatrix m = RandomSparse(9, 5, 0.5, rng);
  const IsvdResult result = RunIsvd(GetParam(), m, 0);
  EXPECT_EQ(result.rank(), 5u);
  EXPECT_TRUE(ResultIsFinite(result));
}

TEST_P(SparseIsvdEdgeTest, RankClampedToMinDimension) {
  Rng rng(12);
  const SparseIntervalMatrix m = RandomSparse(4, 10, 0.6, rng);
  const IsvdResult result = RunIsvd(GetParam(), m, 99);
  EXPECT_EQ(result.rank(), 4u);
  EXPECT_TRUE(ResultIsFinite(result));
}

TEST_P(SparseIsvdEdgeTest, AllZeroRowsAreHandled) {
  // Rows 0, 2, 4 carry no entries: the endpoint operators are genuinely
  // rank-deficient and the Krylov restarts must fill the requested count.
  Rng rng(13);
  std::vector<IntervalTriplet> triplets;
  for (size_t i = 1; i < 10; i += 2) {
    for (size_t j = 0; j < 6; ++j) {
      const double lo = rng.Uniform(0.1, 1.0);
      triplets.push_back({i, j, Interval(lo, lo + 0.2)});
    }
  }
  const SparseIntervalMatrix m =
      SparseIntervalMatrix::FromTriplets(10, 6, std::move(triplets));
  const IsvdResult result = RunIsvd(GetParam(), m, 4);
  EXPECT_EQ(result.rank(), 4u);
  EXPECT_TRUE(ResultIsFinite(result));
}

TEST_P(SparseIsvdEdgeTest, SingleRowMatrix) {
  Rng rng(14);
  const SparseIntervalMatrix m = RandomSparse(1, 6, 0.9, rng);
  const IsvdResult result = RunIsvd(GetParam(), m, 1);
  EXPECT_EQ(result.u.rows(), 1u);
  EXPECT_EQ(result.v.rows(), 6u);
  EXPECT_TRUE(ResultIsFinite(result));
}

TEST_P(SparseIsvdEdgeTest, SingleColumnMatrix) {
  Rng rng(15);
  const SparseIntervalMatrix m = RandomSparse(6, 1, 0.9, rng);
  const IsvdResult result = RunIsvd(GetParam(), m, 1);
  EXPECT_EQ(result.u.rows(), 6u);
  EXPECT_EQ(result.v.rows(), 1u);
  EXPECT_TRUE(ResultIsFinite(result));
}

INSTANTIATE_TEST_SUITE_P(Strategies, SparseIsvdEdgeTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(LanczosSvdEdgeTest, EmptyOperatorReturnsEmptyDecomposition) {
  const SvdResult result = ComputeLanczosSvd(Matrix(0, 0), 3);
  EXPECT_TRUE(result.sigma.empty());
  EXPECT_EQ(result.u.rows(), 0u);
  EXPECT_EQ(result.v.rows(), 0u);
  EXPECT_FALSE(result.truncated);

  const SvdResult wide = ComputeLanczosSvd(Matrix(0, 5), 2);
  EXPECT_TRUE(wide.sigma.empty());
  EXPECT_EQ(wide.v.rows(), 5u);
  EXPECT_EQ(wide.v.cols(), 0u);
}

}  // namespace
}  // namespace ivmf
