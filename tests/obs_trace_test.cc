// Trace-export round-trip tests: spans recorded through the collector must
// come back as well-formed Chrome trace_event JSON (checked with a real
// parser) whose "B"/"E" events replay as a balanced per-thread call stack —
// including after ring wraparound has discarded the oldest spans — and an
// inactive collector must record nothing at all.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "obs/trace.h"
#include "test_util.h"

namespace ivmf::obs {
namespace {

// One event pulled back out of the exported JSON. The exporter's format is
// fixed ({"name":"...","cat":"ivmf","ph":"B","pid":1,"tid":N,"ts":T}), and
// every in-tree span name is a plain literal, so a positional scan is an
// honest decoder here; structural validity is asserted separately with
// ValidateJson.
struct ParsedEvent {
  std::string name;
  char phase = '?';
  int tid = 0;
  double ts_us = 0.0;
};

std::vector<ParsedEvent> ParseTraceEvents(const std::string& json) {
  std::vector<ParsedEvent> out;
  const std::string open = "{\"name\":\"";
  for (size_t pos = json.find(open); pos != std::string::npos;
       pos = json.find(open, pos + 1)) {
    ParsedEvent event;
    const size_t name_begin = pos + open.size();
    const size_t name_end = json.find('"', name_begin);
    event.name = json.substr(name_begin, name_end - name_begin);
    const size_t ph = json.find("\"ph\":\"", name_end);
    event.phase = json[ph + 6];
    const size_t tid = json.find("\"tid\":", ph);
    event.tid = std::atoi(json.c_str() + tid + 6);
    const size_t ts = json.find("\"ts\":", tid);
    event.ts_us = std::atof(json.c_str() + ts + 5);
    out.push_back(event);
  }
  return out;
}

// Replays the events as per-thread call stacks: every "E" must close the
// most recent unclosed "B" of the same name (at a timestamp no earlier than
// its begin), and every stack must be empty at the end.
void ExpectBalanced(const std::vector<ParsedEvent>& events) {
  std::map<int, std::vector<std::pair<std::string, double>>> stacks;
  for (const ParsedEvent& event : events) {
    auto& stack = stacks[event.tid];
    if (event.phase == 'B') {
      stack.emplace_back(event.name, event.ts_us);
    } else {
      ASSERT_EQ(event.phase, 'E') << "unexpected phase for " << event.name;
      ASSERT_FALSE(stack.empty()) << "E without open B: " << event.name;
      EXPECT_EQ(stack.back().first, event.name);
      EXPECT_GE(event.ts_us, stack.back().second);
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed spans on tid " << tid;
  }
}

size_t CountPhase(const std::vector<ParsedEvent>& events, char phase) {
  size_t n = 0;
  for (const ParsedEvent& event : events) n += event.phase == phase ? 1 : 0;
  return n;
}

TEST(TraceTest, InactiveCollectorRecordsNothing) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Stop();
  { TraceSpan span("trace_test.ignored"); }
  // Start() clears anything older; stopping immediately leaves this epoch
  // empty, and spans created while stopped must not register.
  collector.Start();
  collector.Stop();
  { TraceSpan span("trace_test.also_ignored"); }

  const std::string json = collector.ChromeTraceJson();
  std::string error;
  EXPECT_TRUE(ivmf::testing::ValidateJson(json, &error)) << error;
  EXPECT_TRUE(ParseTraceEvents(json).empty()) << json;
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos) << json;
}

TEST(TraceTest, NestedAndSequentialSpansRoundTrip) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Start();
  {
    TraceSpan outer("trace_test.outer");
    { TraceSpan inner("trace_test.inner_a"); }
    { TraceSpan inner("trace_test.inner_b"); }
  }
  { TraceSpan tail("trace_test.tail"); }
  collector.Stop();

  const std::string json = collector.ChromeTraceJson();
  std::string error;
  ASSERT_TRUE(ivmf::testing::ValidateJson(json, &error)) << error << "\n"
                                                         << json;
  const std::vector<ParsedEvent> events = ParseTraceEvents(json);
  EXPECT_EQ(CountPhase(events, 'B'), 4u);
  EXPECT_EQ(CountPhase(events, 'E'), 4u);
  ExpectBalanced(events);

  // All four span names survive the round trip.
  size_t outer_b = 0, inner_b = 0;
  for (const ParsedEvent& event : events) {
    if (event.phase != 'B') continue;
    outer_b += event.name == "trace_test.outer" ? 1 : 0;
    inner_b += event.name == "trace_test.inner_a" ||
                       event.name == "trace_test.inner_b"
                   ? 1
                   : 0;
  }
  EXPECT_EQ(outer_b, 1u);
  EXPECT_EQ(inner_b, 2u);
  EXPECT_EQ(collector.total_dropped(), 0u);
}

TEST(TraceTest, RingWraparoundStaysBalanced) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Start(/*ring_capacity=*/4);
  for (int i = 0; i < 20; ++i) {
    TraceSpan span("trace_test.wrap");
  }
  collector.Stop();

  EXPECT_EQ(collector.total_dropped(), 16u);
  const std::string json = collector.ChromeTraceJson();
  std::string error;
  ASSERT_TRUE(ivmf::testing::ValidateJson(json, &error)) << error;
  const std::vector<ParsedEvent> events = ParseTraceEvents(json);
  // The ring keeps the newest `capacity` spans, still properly paired.
  EXPECT_EQ(CountPhase(events, 'B'), 4u);
  EXPECT_EQ(CountPhase(events, 'E'), 4u);
  ExpectBalanced(events);
}

TEST(TraceTest, RestartClearsPreviousEpoch) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Start();
  { TraceSpan span("trace_test.first_epoch"); }
  collector.Stop();
  collector.Start();
  { TraceSpan span("trace_test.second_epoch"); }
  collector.Stop();

  const std::string json = collector.ChromeTraceJson();
  EXPECT_EQ(json.find("trace_test.first_epoch"), std::string::npos) << json;
  EXPECT_NE(json.find("trace_test.second_epoch"), std::string::npos) << json;
}

TEST(TraceTest, WriteChromeTraceProducesParseableFile) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Start();
  {
    TraceSpan outer("trace_test.file_outer");
    TraceSpan inner("trace_test.file_inner");
  }
  collector.Stop();

  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(collector.WriteChromeTrace(path));

  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(file);
  std::remove(path.c_str());

  EXPECT_EQ(contents, collector.ChromeTraceJson());
  std::string error;
  EXPECT_TRUE(ivmf::testing::ValidateJson(contents, &error)) << error;
  ExpectBalanced(ParseTraceEvents(contents));
}

}  // namespace
}  // namespace ivmf::obs
