// Watchdog tests, all on an injected fake clock: fresh construction is
// healthy, health degrades to stalled exactly past the threshold, a beat
// recovers it, the busy probe keeps an idle-but-quiet component healthy,
// and the /healthz payload is valid JSON carrying the status.

#include <string>

#include <gtest/gtest.h>
#include "obs/watchdog.h"
#include "test_util.h"

namespace ivmf::obs {
namespace {

struct FakeClock {
  double now = 100.0;
  WatchdogOptions Options(double stall_seconds) {
    WatchdogOptions options;
    options.stall_seconds = stall_seconds;
    options.clock = [this] { return now; };
    return options;
  }
};

TEST(WatchdogTest, StrictModeStallsPastThreshold) {
  FakeClock clock;
  Watchdog watchdog(clock.Options(10.0));  // no busy probe: always busy
  EXPECT_EQ(watchdog.health(), Watchdog::Health::kOk);

  clock.now += 10.0;  // exactly at the threshold: still ok
  EXPECT_EQ(watchdog.health(), Watchdog::Health::kOk);
  EXPECT_DOUBLE_EQ(watchdog.SecondsSinceBeat(), 10.0);

  clock.now += 0.5;  // past it: stalled
  EXPECT_EQ(watchdog.health(), Watchdog::Health::kStalled);
}

TEST(WatchdogTest, BeatRecovers) {
  FakeClock clock;
  Watchdog watchdog(clock.Options(5.0));
  clock.now += 20.0;
  ASSERT_EQ(watchdog.health(), Watchdog::Health::kStalled);

  watchdog.Beat();
  EXPECT_EQ(watchdog.health(), Watchdog::Health::kOk);
  EXPECT_DOUBLE_EQ(watchdog.SecondsSinceBeat(), 0.0);
  EXPECT_GE(watchdog.beats(), 1u);
}

TEST(WatchdogTest, IdleProbeSuppressesStall) {
  FakeClock clock;
  bool busy = false;
  WatchdogOptions options = clock.Options(5.0);
  options.busy = [&busy] { return busy; };
  Watchdog watchdog(options);

  clock.now += 60.0;  // long past the threshold, but nothing is queued
  EXPECT_EQ(watchdog.health(), Watchdog::Health::kOk);

  busy = true;  // work arrives and the heartbeat is still stale: stalled
  EXPECT_EQ(watchdog.health(), Watchdog::Health::kStalled);

  watchdog.Beat();
  EXPECT_EQ(watchdog.health(), Watchdog::Health::kOk);
}

TEST(WatchdogTest, StatusJsonIsValidAndCarriesStatus) {
  FakeClock clock;
  Watchdog watchdog(clock.Options(5.0));
  std::string error;
  std::string json = watchdog.StatusJson();
  EXPECT_TRUE(ivmf::testing::ValidateJson(json, &error)) << error << "\n"
                                                         << json;
  EXPECT_NE(json.find("\"status\":\"ok\""), std::string::npos) << json;

  clock.now += 6.0;
  json = watchdog.StatusJson();
  EXPECT_TRUE(ivmf::testing::ValidateJson(json, &error)) << error << "\n"
                                                         << json;
  EXPECT_NE(json.find("\"status\":\"stalled\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"stall_threshold_seconds\":5"), std::string::npos)
      << json;
}

TEST(WatchdogTest, HealthNames) {
  EXPECT_STREQ(WatchdogHealthName(Watchdog::Health::kOk), "ok");
  EXPECT_STREQ(WatchdogHealthName(Watchdog::Health::kStalled), "stalled");
}

}  // namespace
}  // namespace ivmf::obs
