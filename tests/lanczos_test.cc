#include "linalg/lanczos.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "linalg/svd.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::OrthonormalityError;
using ::ivmf::testing::RandomMatrix;
using ::ivmf::testing::RandomSymmetric;

TEST(TridiagonalQLTest, DiagonalInput) {
  std::vector<double> diag{3, 1, 2};
  std::vector<double> off{0, 0};
  Matrix z = Matrix::Identity(3);
  ASSERT_TRUE(TridiagonalQL(diag, off, &z));
  EXPECT_NEAR(diag[0], 1.0, 1e-12);
  EXPECT_NEAR(diag[1], 2.0, 1e-12);
  EXPECT_NEAR(diag[2], 3.0, 1e-12);
}

TEST(TridiagonalQLTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] -> eigenvalues 1, 3.
  std::vector<double> diag{2, 2};
  std::vector<double> off{1};
  Matrix z = Matrix::Identity(2);
  ASSERT_TRUE(TridiagonalQL(diag, off, &z));
  EXPECT_NEAR(diag[0], 1.0, 1e-12);
  EXPECT_NEAR(diag[1], 3.0, 1e-12);
  // Eigenvectors: (1,-1)/sqrt2 and (1,1)/sqrt2 up to sign.
  EXPECT_NEAR(std::abs(z(0, 0)), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(std::abs(z(0, 1)), std::sqrt(0.5), 1e-10);
}

TEST(TridiagonalQLTest, MatchesJacobiOnRandomTridiagonal) {
  Rng rng(1);
  const size_t n = 12;
  std::vector<double> diag(n), off(n - 1);
  for (double& d : diag) d = rng.Uniform(-2, 2);
  for (double& o : off) o = rng.Uniform(-1, 1);

  // Build the dense tridiagonal and solve with Jacobi as an oracle.
  Matrix dense(n, n);
  for (size_t i = 0; i < n; ++i) dense(i, i) = diag[i];
  for (size_t i = 0; i + 1 < n; ++i) {
    dense(i, i + 1) = off[i];
    dense(i + 1, i) = off[i];
  }
  const EigResult jacobi = ComputeSymmetricEig(dense);

  Matrix z = Matrix::Identity(n);
  ASSERT_TRUE(TridiagonalQL(diag, off, &z));
  for (size_t i = 0; i < n; ++i) {
    // QL sorts ascending, Jacobi descending.
    EXPECT_NEAR(diag[i], jacobi.eigenvalues[n - 1 - i], 1e-9);
  }
  EXPECT_LT(OrthonormalityError(z), 1e-9);
}

TEST(TridiagonalQLTest, SingleElement) {
  std::vector<double> diag{5.0};
  std::vector<double> off;
  ASSERT_TRUE(TridiagonalQL(diag, off, nullptr));
  EXPECT_DOUBLE_EQ(diag[0], 5.0);
}

TEST(LanczosTest, TopEigenvaluesMatchJacobi) {
  // PSD Gram-style matrix — the shape ISVD actually feeds to the solver.
  Rng rng(2);
  const Matrix base = RandomMatrix(40, 40, rng);
  const Matrix a = base * base.Transpose();
  const EigResult jacobi = ComputeSymmetricEig(a, 5);
  const EigResult lanczos = ComputeLanczosEig(a, 5);
  ASSERT_EQ(lanczos.eigenvalues.size(), 5u);
  const double scale = std::abs(jacobi.eigenvalues[0]) + 1.0;
  for (size_t j = 0; j < 5; ++j)
    EXPECT_NEAR(lanczos.eigenvalues[j] / scale,
                jacobi.eigenvalues[j] / scale, 1e-6);
}

TEST(LanczosTest, EigenpairsSatisfyDefiningEquation) {
  Rng rng(3);
  const Matrix base = RandomMatrix(30, 30, rng);
  const Matrix a = base * base.Transpose();  // PSD, well-separated spectrum
  const EigResult result = ComputeLanczosEig(a, 6);
  const double scale = std::abs(result.eigenvalues[0]) + 1.0;
  for (size_t j = 0; j < result.eigenvalues.size(); ++j) {
    const std::vector<double> v = result.eigenvectors.Col(j);
    double err = 0.0;
    for (size_t i = 0; i < a.rows(); ++i) {
      double av = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) av += a(i, k) * v[k];
      const double r = av - result.eigenvalues[j] * v[i];
      err += r * r;
    }
    EXPECT_LT(std::sqrt(err) / scale, 1e-6);
  }
}

TEST(LanczosTest, RitzVectorsAreOrthonormal) {
  Rng rng(4);
  const Matrix a = RandomSymmetric(25, rng);
  const EigResult result = ComputeLanczosEig(a, 8);
  EXPECT_LT(OrthonormalityError(result.eigenvectors), 1e-8);
}

TEST(LanczosTest, FullRankFallsBackToJacobi) {
  Rng rng(5);
  const Matrix a = RandomSymmetric(10, rng);
  const EigResult full = ComputeLanczosEig(a, 0);
  const EigResult jacobi = ComputeSymmetricEig(a);
  ASSERT_EQ(full.eigenvalues.size(), jacobi.eigenvalues.size());
  for (size_t j = 0; j < full.eigenvalues.size(); ++j)
    EXPECT_NEAR(full.eigenvalues[j], jacobi.eigenvalues[j], 1e-10);
}

TEST(LanczosTest, GramMatrixSingularValuesMatchSvd) {
  Rng rng(6);
  const Matrix m = RandomMatrix(20, 35, rng);
  const Matrix gram = m.Transpose() * m;  // 35 x 35
  const EigResult lanczos = ComputeLanczosEig(gram, 4);
  const SvdResult svd = ComputeSvd(m, 4);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(std::sqrt(std::max(0.0, lanczos.eigenvalues[j])),
                svd.sigma[j], 1e-7);
  }
}

TEST(LanczosTest, DeterministicForSeed) {
  Rng rng(7);
  const Matrix a = RandomSymmetric(20, rng);
  const EigResult r1 = ComputeLanczosEig(a, 4);
  const EigResult r2 = ComputeLanczosEig(a, 4);
  EXPECT_TRUE(r1.eigenvectors == r2.eigenvectors);
}

TEST(LanczosTest, LowRankMatrixTerminatesEarly) {
  // Rank-2 PSD matrix: Krylov space exhausts after ~2 steps.
  Rng rng(8);
  const Matrix f = RandomMatrix(20, 2, rng);
  const Matrix a = f * f.Transpose();
  const EigResult result = ComputeLanczosEig(a, 2);
  const EigResult jacobi = ComputeSymmetricEig(a, 2);
  for (size_t j = 0; j < 2; ++j)
    EXPECT_NEAR(result.eigenvalues[j], jacobi.eigenvalues[j], 1e-7);
}

TEST(LanczosTest, BreakdownRestartDeliversRequestedCountBeyondRank) {
  // Regression guard for the Krylov-breakdown restart path introduced in
  // PR 2: a rank-3 Gram operator asked for 6 eigenpairs exhausts its
  // invariant subspace after ~3 steps and must restart with fresh random
  // directions until the requested count exists — the sparse ISVD
  // lower/upper eigenpair pairing aborts on a short answer.
  Rng rng(71);
  const Matrix f = RandomMatrix(20, 3, rng);
  const Matrix a = f * f.Transpose();
  const DenseSymmetricOperator op(a);
  const EigResult lanczos = ComputeLanczosEig(op, 6);
  const EigResult jacobi = ComputeSymmetricEig(a, 6);
  ASSERT_EQ(lanczos.eigenvalues.size(), 6u);
  ASSERT_EQ(lanczos.eigenvectors.cols(), 6u);
  const double scale = std::abs(jacobi.eigenvalues[0]) + 1.0;
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(lanczos.eigenvalues[j] / scale, jacobi.eigenvalues[j] / scale,
                1e-8);
  }
  for (size_t j = 3; j < 6; ++j)
    EXPECT_NEAR(lanczos.eigenvalues[j] / scale, 0.0, 1e-8);
  EXPECT_LT(OrthonormalityError(lanczos.eigenvectors), 1e-8);
  // The genuine eigenvectors (sign-canonicalized by both solvers) agree.
  for (size_t j = 0; j < 3; ++j) {
    for (size_t i = 0; i < a.rows(); ++i) {
      EXPECT_NEAR(lanczos.eigenvectors(i, j), jacobi.eigenvectors(i, j), 1e-6);
    }
  }
}

TEST(LanczosTest, ZeroOperatorRestartsToFullRequestedBasis) {
  // The extreme breakdown case (the Gram of an all-zero endpoint matrix):
  // the very first step stalls, and every subsequent vector comes from the
  // random restart — the caller still gets an orthonormal basis of the
  // requested width with zero Ritz values.
  const Matrix a(15, 15);
  const DenseSymmetricOperator op(a);
  const EigResult result = ComputeLanczosEig(op, 4);
  ASSERT_EQ(result.eigenvalues.size(), 4u);
  for (const double lambda : result.eigenvalues)
    EXPECT_NEAR(lambda, 0.0, 1e-12);
  EXPECT_LT(OrthonormalityError(result.eigenvectors), 1e-10);
}

class LanczosRankTest : public ::testing::TestWithParam<int> {};

TEST_P(LanczosRankTest, AgreesWithJacobiAcrossRanks) {
  const int rank = GetParam();
  Rng rng(100 + rank);
  const Matrix base = RandomMatrix(50, 50, rng);
  const Matrix a = base * base.Transpose();
  const EigResult jacobi = ComputeSymmetricEig(a, rank);
  const EigResult lanczos = ComputeLanczosEig(a, rank);
  for (int j = 0; j < rank; ++j) {
    const double scale = std::abs(jacobi.eigenvalues[0]) + 1.0;
    EXPECT_NEAR(lanczos.eigenvalues[j] / scale,
                jacobi.eigenvalues[j] / scale, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, LanczosRankTest,
                         ::testing::Values(1, 2, 4, 8, 12));

TEST(LanczosTest, RestartExhaustionIsSurfacedAsTruncation) {
  // Regression for the silent invariant-subspace restart failure: the loop
  // used to `break` after three failed random-direction attempts with no
  // signal, so a rank-deficient operator could deliver fewer eigenpairs
  // than requested and crash the ISVD endpoint pairing downstream with an
  // opaque shape error. Provoked here by making the restart acceptance
  // threshold unsatisfiable: on a rank-2 Gram, the first breakdown then
  // exhausts the restart attempts and the basis stops growing.
  Rng rng(300);
  const Matrix base = RandomMatrix(12, 2, rng);
  const Matrix a = base * base.Transpose();  // rank 2, 12 x 12

  LanczosOptions strict;
  strict.restart_tolerance = 1e9;  // no random unit direction passes
  const EigResult truncated = ComputeLanczosEig(DenseSymmetricOperator(a), 6,
                                                strict);
  EXPECT_TRUE(truncated.truncated);
  EXPECT_LT(truncated.eigenvalues.size(), 6u);
  EXPECT_GT(truncated.iterations, 0u);
  // What was delivered is still correct: the leading eigenvalues match.
  const EigResult jacobi = ComputeSymmetricEig(a, 2);
  ASSERT_GE(truncated.eigenvalues.size(), 2u);
  EXPECT_NEAR(truncated.eigenvalues[0], jacobi.eigenvalues[0], 1e-8);
  EXPECT_NEAR(truncated.eigenvalues[1], jacobi.eigenvalues[1], 1e-8);

  // Default options on the same operator restart fine: full count, no flag.
  const EigResult full = ComputeLanczosEig(DenseSymmetricOperator(a), 6);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.eigenvalues.size(), 6u);
}

TEST(LanczosTest, WarmStartFromRitzBasisConvergesNoSlower) {
  // With the convergence-based early exit on, starting from the previous
  // Ritz basis must never need more steps than the random cold start — the
  // warm-start contract the streaming ISVD driver relies on.
  Rng rng(301);
  const Matrix base = RandomMatrix(60, 6, rng);
  Matrix a = base * base.Transpose();

  LanczosOptions cold;
  cold.convergence_tol = 1e-10;
  const EigResult first = ComputeLanczosEig(DenseSymmetricOperator(a), 4, cold);
  ASSERT_EQ(first.eigenvalues.size(), 4u);

  // Perturb the operator slightly (a streaming-style small change).
  Rng perturb(302);
  for (size_t i = 0; i < a.rows(); ++i) {
    const double d = perturb.Uniform(0.0, 1e-3);
    a(i, i) += d;
  }
  const EigResult recold = ComputeLanczosEig(DenseSymmetricOperator(a), 4, cold);
  LanczosOptions warm = cold;
  warm.start_basis = first.eigenvectors;
  const EigResult rewarm = ComputeLanczosEig(DenseSymmetricOperator(a), 4, warm);

  EXPECT_LE(rewarm.iterations, recold.iterations);
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(rewarm.eigenvalues[j], recold.eigenvalues[j],
                1e-8 * (std::abs(recold.eigenvalues[0]) + 1.0));
  }
}

TEST(LanczosTest, ConvergenceExitMatchesFullCapRun) {
  Rng rng(303);
  const Matrix base = RandomMatrix(80, 8, rng);
  const Matrix a = base * base.Transpose();

  const EigResult cap = ComputeLanczosEig(DenseSymmetricOperator(a), 3);
  LanczosOptions early;
  early.convergence_tol = 1e-11;
  const EigResult exited = ComputeLanczosEig(DenseSymmetricOperator(a), 3, early);
  EXPECT_LE(exited.iterations, cap.iterations);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(exited.eigenvalues[j], cap.eigenvalues[j],
                1e-8 * (std::abs(cap.eigenvalues[0]) + 1.0));
  }
}

}  // namespace
}  // namespace ivmf
