// The paper's headline comparative claims, encoded as tests on scaled-down
// versions of the default synthetic configuration. These complement the
// benchmark harness: if a refactor silently breaks one of the paper's
// orderings, this file fails.

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "base/stopwatch.h"
#include "core/accuracy.h"
#include "core/isvd.h"
#include "core/lp_isvd.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace ivmf {
namespace {

// Scaled default configuration (paper: 40 x 250, rank 20).
SyntheticConfig ScaledDefault() {
  SyntheticConfig config;
  config.rows = 24;
  config.cols = 80;
  return config;
}
constexpr size_t kRank = 10;
constexpr int kTrials = 6;

// Mean H over trials for one strategy/target, reusing the Gram per trial.
struct FamilyScores {
  double h[5][3] = {};  // [strategy][target index a/b/c]
};

FamilyScores ScoreFamily(uint64_t seed) {
  FamilyScores scores;
  Rng master(seed);
  for (int t = 0; t < kTrials; ++t) {
    Rng rng = master.Fork();
    const IntervalMatrix m = GenerateUniformIntervalMatrix(ScaledDefault(), rng);
    IsvdOptions options;
    const GramEig gram = ComputeGramEig(m, kRank, options);
    for (int target_idx = 0; target_idx < 3; ++target_idx) {
      options.target = static_cast<DecompositionTarget>(target_idx);
      for (int strategy = 0; strategy <= 4; ++strategy) {
        if (strategy == 0 && options.target != DecompositionTarget::kC)
          continue;
        IsvdResult result;
        switch (strategy) {
          case 0: result = Isvd0(m, kRank, options); break;
          case 1: result = Isvd1(m, kRank, options); break;
          case 2: result = Isvd2(m, kRank, gram, options); break;
          case 3: result = Isvd3(m, kRank, gram, options); break;
          default: result = Isvd4(m, kRank, gram, options); break;
        }
        scores.h[strategy][target_idx] +=
            DecompositionAccuracy(m, result.Reconstruct()).harmonic_mean /
            kTrials;
      }
    }
  }
  return scores;
}

class PaperClaims : public ::testing::Test {
 protected:
  static const FamilyScores& Scores() {
    static const FamilyScores scores = ScoreFamily(2026);
    return scores;
  }
  static double H(int strategy, DecompositionTarget target) {
    return Scores().h[strategy][static_cast<int>(target)];
  }
};

TEST_F(PaperClaims, OptionBDominatesPerStrategy) {
  // Figure 6a: the ISVD#-b class gives the highest accuracies.
  for (int s = 1; s <= 4; ++s) {
    EXPECT_GE(H(s, DecompositionTarget::kB),
              H(s, DecompositionTarget::kA) - 1e-9) << "ISVD" << s;
    EXPECT_GE(H(s, DecompositionTarget::kB),
              H(s, DecompositionTarget::kC) - 1e-9) << "ISVD" << s;
  }
}

TEST_F(PaperClaims, Isvd4BIsBestOverall) {
  const double best = H(4, DecompositionTarget::kB);
  for (int s = 1; s <= 4; ++s)
    for (int t = 0; t < 3; ++t)
      EXPECT_GE(best, Scores().h[s][t] - 1e-9)
          << "ISVD" << s << " target " << t;
  EXPECT_GT(best, H(0, DecompositionTarget::kC));  // beats ISVD0 too
}

TEST_F(PaperClaims, EarlyAlignmentBeatsLateAlignment) {
  // ISVD3/4 (align before solving U) beat ISVD1/2 (align last) under
  // option b at the default configuration.
  EXPECT_GE(H(3, DecompositionTarget::kB),
            H(1, DecompositionTarget::kB) - 1e-9);
  EXPECT_GE(H(4, DecompositionTarget::kB),
            H(2, DecompositionTarget::kB) - 1e-9);
}

TEST_F(PaperClaims, OptionCApproximatesIsvd0) {
  // Figure 6a: the ISVD#-c class lands near ISVD0 ("redundant work").
  const double isvd0 = H(0, DecompositionTarget::kC);
  for (int s = 1; s <= 4; ++s)
    EXPECT_NEAR(H(s, DecompositionTarget::kC), isvd0, 0.08) << "ISVD" << s;
}

TEST_F(PaperClaims, Isvd1EqualsIsvd2AtFullGramPrecision) {
  // Figures 6/7/9 show ISVD1 and ISVD2 nearly tied under option b: both
  // align the same latent spaces, obtained by different routes.
  EXPECT_NEAR(H(1, DecompositionTarget::kB), H(2, DecompositionTarget::kB),
              0.02);
}

TEST(PaperClaimsLp, LpIsSlowerAndWorse) {
  // Figure 6: LP competitors are ineffective and much slower.
  Rng rng(7);
  SyntheticConfig config;
  config.rows = 12;
  config.cols = 16;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  IsvdOptions options;
  options.target = DecompositionTarget::kA;

  Stopwatch sw;
  const IsvdResult isvd = Isvd4(m, 6, options);
  const double isvd_seconds = sw.Seconds();
  const double isvd_h =
      DecompositionAccuracy(m, isvd.Reconstruct()).harmonic_mean;

  sw.Restart();
  const IsvdResult lp = LpIsvd(m, 6, options);
  const double lp_seconds = sw.Seconds();
  const double lp_h = DecompositionAccuracy(m, lp.Reconstruct()).harmonic_mean;

  EXPECT_LT(lp_h, isvd_h);
  EXPECT_LT(lp_h, 0.05);            // "≈ 0.0 H-mean"
  EXPECT_GT(lp_seconds, isvd_seconds);  // and massively slower
}

}  // namespace
}  // namespace ivmf
