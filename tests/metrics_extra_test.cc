// Tests for the extended evaluation metrics (ARI, per-class report,
// confusion matrix) and the interval-matrix statistics helpers.

#include <gtest/gtest.h>
#include "base/rng.h"
#include "eval/metrics.h"
#include "interval/interval_ops.h"
#include "test_util.h"

namespace ivmf {
namespace {

TEST(AriTest, IdenticalPartitionsGiveOne) {
  EXPECT_NEAR(AdjustedRandIndex({0, 0, 1, 1, 2}, {0, 0, 1, 1, 2}), 1.0, 1e-12);
}

TEST(AriTest, RelabeledPartitionsGiveOne) {
  EXPECT_NEAR(AdjustedRandIndex({0, 0, 1, 1}, {7, 7, 3, 3}), 1.0, 1e-12);
}

TEST(AriTest, CrossedPartitionsNearZero) {
  // Perfectly crossed 2x2 design: ARI ~ at/below 0.
  const double ari = AdjustedRandIndex({0, 0, 1, 1}, {0, 1, 0, 1});
  EXPECT_LT(ari, 0.1);
}

TEST(AriTest, SymmetricInArguments) {
  const std::vector<int> a{0, 1, 1, 2, 0, 2, 1, 0};
  const std::vector<int> b{1, 1, 0, 2, 2, 0, 1, 1};
  EXPECT_NEAR(AdjustedRandIndex(a, b), AdjustedRandIndex(b, a), 1e-12);
}

TEST(AriTest, RandomPartitionsAverageNearZero) {
  Rng rng(1);
  double sum = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> a(60), b(60);
    for (size_t i = 0; i < 60; ++i) {
      a[i] = static_cast<int>(rng.UniformIndex(4));
      b[i] = static_cast<int>(rng.UniformIndex(4));
    }
    sum += AdjustedRandIndex(a, b);
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);  // "adjusted for chance"
}

TEST(AriTest, BothTrivialPartitions) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex({1, 1, 1}, {2, 2, 2}), 1.0);
}

TEST(PerClassReportTest, PerfectPrediction) {
  const auto reports = PerClassReport({0, 1, 1}, {0, 1, 1});
  ASSERT_EQ(reports.size(), 2u);
  for (const ClassReport& r : reports) {
    EXPECT_DOUBLE_EQ(r.precision, 1.0);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
    EXPECT_DOUBLE_EQ(r.f1, 1.0);
  }
  EXPECT_EQ(reports[0].support, 1u);
  EXPECT_EQ(reports[1].support, 2u);
}

TEST(PerClassReportTest, KnownBinaryCase) {
  // truth: 1 1 1 0 0 / pred: 1 1 0 0 1
  const auto reports = PerClassReport({1, 1, 1, 0, 0}, {1, 1, 0, 0, 1});
  ASSERT_EQ(reports.size(), 2u);
  const ClassReport& c0 = reports[0];
  EXPECT_EQ(c0.label, 0);
  EXPECT_DOUBLE_EQ(c0.precision, 0.5);  // predicted 0 twice, one right
  EXPECT_DOUBLE_EQ(c0.recall, 0.5);
  const ClassReport& c1 = reports[1];
  EXPECT_DOUBLE_EQ(c1.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c1.recall, 2.0 / 3.0);
}

TEST(PerClassReportTest, MacroF1Consistency) {
  const std::vector<int> truth{0, 0, 1, 1, 2, 2, 2};
  const std::vector<int> pred{0, 1, 1, 1, 2, 0, 2};
  const auto reports = PerClassReport(truth, pred);
  double mean_f1 = 0.0;
  for (const ClassReport& r : reports) mean_f1 += r.f1;
  mean_f1 /= static_cast<double>(reports.size());
  EXPECT_NEAR(mean_f1, MacroF1(truth, pred), 1e-12);
}

TEST(ConfusionMatrixTest, CountsAreCorrect) {
  const ConfusionMatrix cm =
      BuildConfusionMatrix({0, 0, 1, 1, 1}, {0, 1, 1, 1, 0});
  ASSERT_EQ(cm.labels.size(), 2u);
  EXPECT_EQ(cm.counts[0][0], 1u);  // truth 0 -> pred 0
  EXPECT_EQ(cm.counts[0][1], 1u);  // truth 0 -> pred 1
  EXPECT_EQ(cm.counts[1][0], 1u);
  EXPECT_EQ(cm.counts[1][1], 2u);
}

TEST(ConfusionMatrixTest, IncludesPredictedOnlyLabels) {
  const ConfusionMatrix cm = BuildConfusionMatrix({0, 0}, {0, 5});
  ASSERT_EQ(cm.labels.size(), 2u);
  EXPECT_EQ(cm.labels[1], 5);
  EXPECT_EQ(cm.counts[0][1], 1u);
}

TEST(ConfusionMatrixTest, TotalEqualsSampleCount) {
  Rng rng(2);
  std::vector<int> truth(40), pred(40);
  for (size_t i = 0; i < 40; ++i) {
    truth[i] = static_cast<int>(rng.UniformIndex(5));
    pred[i] = static_cast<int>(rng.UniformIndex(5));
  }
  const ConfusionMatrix cm = BuildConfusionMatrix(truth, pred);
  size_t total = 0;
  for (const auto& row : cm.counts)
    for (size_t c : row) total += c;
  EXPECT_EQ(total, 40u);
}

TEST(IntervalStatsTest, MeanSpan) {
  IntervalMatrix m(1, 2);
  m.Set(0, 0, Interval(0, 4));
  m.Set(0, 1, Interval(1, 1));
  EXPECT_DOUBLE_EQ(MeanSpan(m), 2.0);
  EXPECT_DOUBLE_EQ(MeanSpan(IntervalMatrix()), 0.0);
}

TEST(IntervalStatsTest, ContainmentFraction) {
  IntervalMatrix m(1, 2);
  m.Set(0, 0, Interval(0, 1));
  m.Set(0, 1, Interval(0, 1));
  const Matrix inside = Matrix::FromRows({{0.5, 0.7}});
  const Matrix half = Matrix::FromRows({{0.5, 2.0}});
  EXPECT_DOUBLE_EQ(ContainmentFraction(m, inside), 1.0);
  EXPECT_DOUBLE_EQ(ContainmentFraction(m, half), 0.5);
}

TEST(IntervalStatsTest, IntervalDensity) {
  IntervalMatrix m(2, 2);
  m.Set(0, 0, Interval(0, 1));
  m.Set(1, 1, Interval(2, 2.5));
  EXPECT_DOUBLE_EQ(IntervalDensity(m), 0.5);
}

}  // namespace
}  // namespace ivmf
