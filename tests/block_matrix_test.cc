// Shard-boundary and backing coverage for ShardedSparseIntervalMatrix:
// every sharded kernel against the monolithic CSR at the kernels' 1e-12
// differential bound across the partition shapes that exercise boundary
// arithmetic (unaligned last shard, single-row shards, shard_rows >= n,
// whole shards of empty rows), in both sign regimes; construction-route
// equivalence (FromTriplets / FromCsr / Builder / View); the dense-Gram
// statics' bit-identity promise; and the mmap story — kernel parity on a
// mapped store, the kAuto size cutover, and the crash-consistency smoke
// (persist a segment directory, drop the matrix, OpenStore from a clean
// object, re-verify).

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"
#include "sparse/block_matrix.h"
#include "sparse/shard_store.h"
#include "sparse/sparse_gram_operator.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {
namespace {

using Endpoint = SparseIntervalMatrix::Endpoint;

// Fixture entries in ascending (row, col) order. `signed_values` flips the
// regime between entrywise non-negative and mixed-sign (the four-product
// Gram territory); rows in [empty_begin, empty_end) are left entirely
// empty so whole shards can come out empty.
std::vector<IntervalTriplet> MakeTriplets(size_t rows, size_t cols,
                                          double fill, bool signed_values,
                                          uint64_t seed, size_t empty_begin = 0,
                                          size_t empty_end = 0) {
  Rng rng(seed);
  std::vector<IntervalTriplet> triplets;
  for (size_t i = 0; i < rows; ++i) {
    if (i >= empty_begin && i < empty_end) continue;
    for (size_t j = 0; j < cols; ++j) {
      if (rng.Uniform() >= fill) continue;
      const double a =
          signed_values ? rng.Uniform(-2.0, 2.0) : rng.Uniform(0.5, 4.0);
      triplets.push_back({i, j, Interval(a, a + rng.Uniform())});
    }
  }
  return triplets;
}

void ExpectVecNear(const std::vector<double>& got,
                   const std::vector<double>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < want.size(); ++i) {
    const double tol = 1e-12 * std::max(1.0, std::fabs(want[i]));
    EXPECT_LE(std::fabs(got[i] - want[i]), tol) << what << "[" << i << "]";
  }
}

void ExpectMatNear(const Matrix& got, const Matrix& want,
                   const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (size_t i = 0; i < want.rows(); ++i) {
    for (size_t j = 0; j < want.cols(); ++j) {
      const double tol = 1e-12 * std::max(1.0, std::fabs(want(i, j)));
      EXPECT_LE(std::fabs(got(i, j) - want(i, j)), tol)
          << what << "(" << i << ", " << j << ")";
    }
  }
}

void ExpectIntervalMatNear(const IntervalMatrix& got,
                           const IntervalMatrix& want,
                           const std::string& what) {
  ExpectMatNear(got.lower(), want.lower(), what + " lower");
  ExpectMatNear(got.upper(), want.upper(), what + " upper");
}

Matrix RandomDense(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.Uniform(-1.0, 1.0);
  return m;
}

// Every sharded kernel against its monolithic sibling. The two kernels
// MultiplyTransposeMid and IntervalMultiplyDenseTranspose have no
// monolithic namesake; their references are the endpoint-transpose average
// and the materialized-transpose interval product respectively.
void ExpectKernelsMatchMonolithic(const SparseIntervalMatrix& mono,
                                  const ShardedSparseIntervalMatrix& sharded,
                                  const std::string& what) {
  ASSERT_EQ(sharded.rows(), mono.rows()) << what;
  ASSERT_EQ(sharded.cols(), mono.cols()) << what;
  ASSERT_EQ(sharded.nnz(), mono.nnz()) << what;
  EXPECT_EQ(sharded.IsProper(), mono.IsProper()) << what;
  EXPECT_EQ(sharded.IsNonNegative(), mono.IsNonNegative()) << what;

  const size_t rows = mono.rows(), cols = mono.cols();
  Rng rng(5);
  std::vector<double> x(cols), xt(rows);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  for (double& v : xt) v = rng.Uniform(-1.0, 1.0);

  std::vector<double> got(rows), want(rows);
  for (const Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
    mono.Multiply(e, x, want);
    sharded.Multiply(e, x, got);
    ExpectVecNear(got, want, what + " Multiply");
  }
  mono.MultiplyMid(x, want);
  sharded.MultiplyMid(x, got);
  ExpectVecNear(got, want, what + " MultiplyMid");

  std::vector<double> got_hi(rows), want_hi(rows);
  mono.MultiplyBoth(x, want, want_hi);
  sharded.MultiplyBoth(x, got, got_hi);
  ExpectVecNear(got, want, what + " MultiplyBoth lo");
  ExpectVecNear(got_hi, want_hi, what + " MultiplyBoth hi");

  std::vector<double> t_got(cols), t_want(cols);
  std::vector<double> t_lo(cols), t_hi(cols);
  for (const Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
    mono.MultiplyTranspose(e, xt, t_want);
    sharded.MultiplyTranspose(e, xt, t_got);
    ExpectVecNear(t_got, t_want, what + " MultiplyTranspose");
  }
  mono.MultiplyTranspose(Endpoint::kLower, xt, t_lo);
  mono.MultiplyTranspose(Endpoint::kUpper, xt, t_hi);
  for (size_t j = 0; j < cols; ++j) t_want[j] = 0.5 * (t_lo[j] + t_hi[j]);
  sharded.MultiplyTransposeMid(xt, t_got);
  ExpectVecNear(t_got, t_want, what + " MultiplyTransposeMid");

  std::vector<double> g_got(cols), g_want(cols);
  for (const Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
    mono.GramMultiply(e, x, g_want);
    sharded.GramMultiply(e, x, g_got);
    ExpectVecNear(g_got, g_want, what + " GramMultiply");
  }
  std::vector<double> g_got_hi(cols), g_want_hi(cols);
  mono.GramMultiplyBoth(x, g_want, g_want_hi);
  sharded.GramMultiplyBoth(x, g_got, g_got_hi);
  ExpectVecNear(g_got, g_want, what + " GramMultiplyBoth lo");
  ExpectVecNear(g_got_hi, g_want_hi, what + " GramMultiplyBoth hi");

  const Matrix b = RandomDense(cols, 3, 31);
  const Matrix bt = RandomDense(rows, 3, 32);
  for (const Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
    ExpectMatNear(sharded.MultiplyDense(e, b), mono.MultiplyDense(e, b),
                  what + " MultiplyDense");
  }
  ExpectIntervalMatNear(sharded.IntervalMultiplyDense(b),
                        mono.IntervalMultiplyDense(b),
                        what + " IntervalMultiplyDense");
  ExpectIntervalMatNear(sharded.IntervalMultiplyDenseTranspose(bt),
                        mono.Transpose().IntervalMultiplyDense(bt),
                        what + " IntervalMultiplyDenseTranspose");

  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      const Interval a = sharded.At(i, j);
      const Interval m = mono.At(i, j);
      EXPECT_EQ(a.lo, m.lo) << what << " At(" << i << ", " << j << ")";
      EXPECT_EQ(a.hi, m.hi) << what << " At(" << i << ", " << j << ")";
    }
  }
}

class ShardBoundaryTest : public ::testing::TestWithParam<bool> {};

// Partition shapes that stress the boundary arithmetic: single-row shards,
// an unaligned last shard (61 rows in shards of 7 leaves a 5-row tail),
// one exact-fit shard, and shard_rows past the row count.
TEST_P(ShardBoundaryTest, EveryKernelMatchesMonolithic) {
  const bool signed_values = GetParam();
  const size_t rows = 61, cols = 23;
  std::vector<IntervalTriplet> triplets =
      MakeTriplets(rows, cols, 0.15, signed_values, 77);
  const SparseIntervalMatrix mono =
      SparseIntervalMatrix::FromTriplets(rows, cols, triplets);
  ASSERT_EQ(mono.IsNonNegative(), !signed_values);

  const struct {
    size_t shard_rows;
    size_t want_shards;
  } configs[] = {{1, 61}, {7, 9}, {61, 1}, {100, 1}};
  for (const auto& config : configs) {
    const ShardedSparseIntervalMatrix sharded =
        ShardedSparseIntervalMatrix::FromTriplets(rows, cols, triplets,
                                                  config.shard_rows);
    EXPECT_EQ(sharded.num_shards(), config.want_shards);
    EXPECT_FALSE(sharded.mmap_backed());
    ExpectKernelsMatchMonolithic(
        mono, sharded,
        (signed_values ? "signed" : "nonneg") + std::string(" shard_rows=") +
            std::to_string(config.shard_rows));
  }
}

// Rows 16..40 carry no entries, so shards 2, 3, and 4 of the 8-row
// partition are entirely empty — the kernels must pass through them
// without perturbing the reduction order.
TEST_P(ShardBoundaryTest, WholeEmptyShards) {
  const bool signed_values = GetParam();
  const size_t rows = 64, cols = 19;
  std::vector<IntervalTriplet> triplets =
      MakeTriplets(rows, cols, 0.25, signed_values, 78, 16, 40);
  const SparseIntervalMatrix mono =
      SparseIntervalMatrix::FromTriplets(rows, cols, triplets);
  const ShardedSparseIntervalMatrix sharded =
      ShardedSparseIntervalMatrix::FromTriplets(rows, cols, triplets, 8);
  ASSERT_EQ(sharded.num_shards(), 8u);
  ExpectKernelsMatchMonolithic(mono, sharded, "empty-shards");
}

INSTANTIATE_TEST_SUITE_P(SignRegimes, ShardBoundaryTest, ::testing::Bool());

TEST(BlockMatrixConstructionTest, FromCsrMatchesFromTriplets) {
  std::vector<IntervalTriplet> triplets = MakeTriplets(40, 17, 0.2, true, 81);
  const SparseIntervalMatrix mono =
      SparseIntervalMatrix::FromTriplets(40, 17, triplets);
  const ShardedSparseIntervalMatrix from_csr =
      ShardedSparseIntervalMatrix::FromCsr(mono, 9);
  const ShardedSparseIntervalMatrix from_triplets =
      ShardedSparseIntervalMatrix::FromTriplets(40, 17, std::move(triplets),
                                                9);
  ExpectKernelsMatchMonolithic(mono, from_csr, "FromCsr");
  ExpectKernelsMatchMonolithic(mono, from_triplets, "FromTriplets");
  EXPECT_EQ(from_csr.shard_rows(), 9u);
  EXPECT_EQ(from_csr.num_shards(), 5u);
}

// Row-streaming construction must land byte-for-byte where the batch
// routes do — same CSR content shard by shard, checked through ToCsr.
TEST(BlockMatrixConstructionTest, BuilderMatchesBatchConstruction) {
  const size_t rows = 53, cols = 21;
  // Skip a row range so the builder pads empty rows (and one empty shard).
  std::vector<IntervalTriplet> triplets =
      MakeTriplets(rows, cols, 0.2, true, 82, 10, 22);
  const SparseIntervalMatrix mono =
      SparseIntervalMatrix::FromTriplets(rows, cols, triplets);

  ShardedSparseIntervalMatrix::Builder builder(rows, cols, 10,
                                               BackingPolicy::Memory());
  for (const IntervalTriplet& t : triplets) {
    builder.Append(t.row, t.col, t.value);
  }
  const ShardedSparseIntervalMatrix built = builder.Finish();
  EXPECT_EQ(built.num_shards(), 6u);
  ExpectKernelsMatchMonolithic(mono, built, "Builder");

  const SparseIntervalMatrix round_trip = built.ToCsr();
  ASSERT_EQ(round_trip.nnz(), mono.nnz());
  const IntervalMatrix dense = mono.ToDense();
  const IntervalMatrix dense_round_trip = round_trip.ToDense();
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      EXPECT_EQ(dense_round_trip.At(i, j).lo, dense.At(i, j).lo);
      EXPECT_EQ(dense_round_trip.At(i, j).hi, dense.At(i, j).hi);
    }
  }
}

// The zero-copy View partitions the base in place and must keep it alive
// through the shared_ptr even after the caller drops its reference.
TEST(BlockMatrixConstructionTest, ViewSharesTheBaseStore) {
  auto base = std::make_shared<const SparseIntervalMatrix>(
      SparseIntervalMatrix::FromTriplets(45, 18,
                                         MakeTriplets(45, 18, 0.2, false, 83)));
  ShardedSparseIntervalMatrix view =
      ShardedSparseIntervalMatrix::View(base, 11);
  EXPECT_EQ(view.num_shards(), 5u);
  EXPECT_FALSE(view.mmap_backed());

  const SparseIntervalMatrix mono = *base;  // keep a reference copy
  base.reset();
  ExpectKernelsMatchMonolithic(mono, view, "View");
}

// The doc promises the dense-Gram statics accumulate shard-sequentially in
// the identical addition order as the monolithic SparseGramOperator
// statics — bit-identical, not merely close.
TEST(BlockMatrixGramTest, DenseGramStaticsAreBitIdentical) {
  for (const bool signed_values : {false, true}) {
    const SparseIntervalMatrix mono = SparseIntervalMatrix::FromTriplets(
        37, 14, MakeTriplets(37, 14, 0.25, signed_values, 84));
    const ShardedSparseIntervalMatrix sharded =
        ShardedSparseIntervalMatrix::FromCsr(mono, 8);

    for (const Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
      const Matrix want = SparseGramOperator::DenseGram(mono, e);
      const Matrix got = ShardedSparseIntervalMatrix::DenseGram(sharded, e);
      ASSERT_EQ(got.rows(), want.rows());
      for (size_t i = 0; i < want.rows(); ++i)
        for (size_t j = 0; j < want.cols(); ++j)
          EXPECT_EQ(got(i, j), want(i, j)) << "(" << i << ", " << j << ")";
    }
    const IntervalMatrix want = SparseGramOperator::DenseGramEndpoints(mono);
    const IntervalMatrix got =
        ShardedSparseIntervalMatrix::DenseGramEndpoints(sharded);
    for (size_t i = 0; i < want.rows(); ++i) {
      for (size_t j = 0; j < want.cols(); ++j) {
        EXPECT_EQ(got.At(i, j).lo, want.At(i, j).lo);
        EXPECT_EQ(got.At(i, j).hi, want.At(i, j).hi);
      }
    }
  }
}

TEST(BlockMatrixMmapTest, MappedStoreMatchesMonolithic) {
  const SparseIntervalMatrix mono = SparseIntervalMatrix::FromTriplets(
      57, 22, MakeTriplets(57, 22, 0.2, true, 85));
  const ShardedSparseIntervalMatrix sharded =
      ShardedSparseIntervalMatrix::FromCsr(mono, 12, BackingPolicy::Mmap());
  EXPECT_TRUE(sharded.mmap_backed());
  EXPECT_FALSE(sharded.store_dir().empty());
  ExpectKernelsMatchMonolithic(mono, sharded, "mmap");
}

// kAuto compares the estimated store bytes against the budget: a tiny
// budget must spill to segment files, a huge one must stay on the heap.
TEST(BlockMatrixMmapTest, AutoPolicySpillsOnBudget) {
  const SparseIntervalMatrix mono = SparseIntervalMatrix::FromTriplets(
      48, 16, MakeTriplets(48, 16, 0.25, false, 86));
  const ShardedSparseIntervalMatrix spilled =
      ShardedSparseIntervalMatrix::FromCsr(mono, 12, BackingPolicy::Auto(64));
  EXPECT_TRUE(spilled.mmap_backed());
  const ShardedSparseIntervalMatrix resident =
      ShardedSparseIntervalMatrix::FromCsr(mono, 12,
                                           BackingPolicy::Auto(1u << 30));
  EXPECT_FALSE(resident.mmap_backed());
  ExpectKernelsMatchMonolithic(mono, spilled, "auto-mmap");
  ExpectKernelsMatchMonolithic(mono, resident, "auto-memory");
}

// Crash-consistency smoke: persist a store to an explicit directory, let
// the writing matrix die, reopen the segment files from a clean object,
// and re-verify the kernels — what a restart after a crash does.
TEST(BlockMatrixMmapTest, OpenStoreReopensPersistedSegments) {
  const SparseIntervalMatrix mono = SparseIntervalMatrix::FromTriplets(
      44, 15, MakeTriplets(44, 15, 0.25, true, 87));

  char dir_template[] = "/tmp/ivmf_block_store_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;

  size_t num_shards = 0;
  {
    const ShardedSparseIntervalMatrix writer =
        ShardedSparseIntervalMatrix::FromCsr(mono, 10,
                                             BackingPolicy::Mmap(dir));
    ASSERT_TRUE(writer.mmap_backed());
    ASSERT_EQ(writer.store_dir(), dir);
    num_shards = writer.num_shards();
  }  // explicit directories persist past the matrix

  ShardedSparseIntervalMatrix reopened;
  std::string error;
  ASSERT_TRUE(ShardedSparseIntervalMatrix::OpenStore(dir, &reopened, &error))
      << error;
  EXPECT_EQ(reopened.num_shards(), num_shards);
  EXPECT_TRUE(reopened.mmap_backed());
  ExpectKernelsMatchMonolithic(mono, reopened, "OpenStore");

  // An empty directory is not a store.
  char empty_template[] = "/tmp/ivmf_block_empty_XXXXXX";
  ASSERT_NE(::mkdtemp(empty_template), nullptr);
  ShardedSparseIntervalMatrix none;
  EXPECT_FALSE(
      ShardedSparseIntervalMatrix::OpenStore(empty_template, &none, &error));
  EXPECT_FALSE(error.empty());
  ::rmdir(empty_template);

  for (size_t s = 0; s < num_shards; ++s) {
    std::remove((dir + "/shard_" + std::to_string(s) + ".ivsh").c_str());
  }
  ::rmdir(dir.c_str());
}

TEST(BlockMatrixEdgeTest, DefaultConstructedIsEmpty) {
  const ShardedSparseIntervalMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.num_shards(), 0u);
}

}  // namespace
}  // namespace ivmf
