// Streaming subsystem tests: the delta-log matrix must stay exactly
// equivalent to from-scratch triplet construction under interleaved
// inserts, updates, and compactions, and StreamingIsvd's incremental
// (warm-started, early-exiting) refreshes must match the from-scratch
// decomposition to 1e-8 for every strategy 0–4 while never spending more
// Krylov iterations than a cold start.

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/sparse_isvd.h"
#include "core/streaming_isvd.h"
#include "sparse/dynamic_sparse_interval_matrix.h"

namespace ivmf {
namespace {

using CellMap = std::map<std::pair<size_t, size_t>, Interval>;

std::vector<IntervalTriplet> ToTriplets(const CellMap& cells) {
  std::vector<IntervalTriplet> triplets;
  triplets.reserve(cells.size());
  for (const auto& [key, value] : cells) {
    triplets.push_back({key.first, key.second, value});
  }
  return triplets;
}

void ExpectSameMatrix(const SparseIntervalMatrix& a,
                      const SparseIntervalMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  ASSERT_EQ(a.row_ptr(), b.row_ptr());
  ASSERT_EQ(a.col_idx(), b.col_idx());
  for (size_t k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(a.lower_values()[k], b.lower_values()[k]) << "entry " << k;
    EXPECT_EQ(a.upper_values()[k], b.upper_values()[k]) << "entry " << k;
  }
}

// A near-low-rank non-negative base: rank-`k` structure the decompositions
// resolve with comfortable spectral gaps, at partial fill like the
// recommender matrices.
CellMap RandomBaseCells(size_t n, size_t m, size_t k, double fill, Rng& rng) {
  Matrix u(n, k), v(m, k);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < k; ++j) u(i, j) = rng.Uniform(0.1, 1.0);
  for (size_t i = 0; i < m; ++i)
    for (size_t j = 0; j < k; ++j) v(i, j) = rng.Uniform(0.1, 1.0);
  CellMap cells;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (!rng.Bernoulli(fill)) continue;
      double base = 0.0;
      for (size_t c = 0; c < k; ++c) base += u(i, c) * v(j, c);
      cells[{i, j}] = Interval(base, base + rng.Uniform(0.0, 0.2));
    }
  }
  return cells;
}

// A batch of arrivals: mostly small revisions of existing cells plus a few
// brand-new cells, mirroring ratings being revised and added.
std::vector<IntervalTriplet> RandomBatch(const CellMap& cells, size_t n,
                                         size_t m, size_t revisions,
                                         size_t inserts, Rng& rng) {
  std::vector<IntervalTriplet> batch;
  std::vector<std::pair<size_t, size_t>> keys;
  keys.reserve(cells.size());
  for (const auto& [key, value] : cells) keys.push_back(key);
  for (size_t t = 0; t < revisions && !keys.empty(); ++t) {
    const auto& key = keys[rng.UniformIndex(keys.size())];
    const Interval old = cells.at(key);
    const double shift = rng.Uniform(-0.05, 0.05);
    batch.push_back(
        {key.first, key.second,
         Interval(old.lo + shift, old.hi + shift + rng.Uniform(0.0, 0.02))});
  }
  for (size_t t = 0; t < inserts; ++t) {
    const size_t i = rng.UniformIndex(n);
    const size_t j = rng.UniformIndex(m);
    const double base = rng.Uniform(0.2, 1.0);
    batch.push_back({i, j, Interval(base, base + rng.Uniform(0.0, 0.2))});
  }
  return batch;
}

void ApplyToShadow(CellMap& cells, const std::vector<IntervalTriplet>& batch) {
  for (const IntervalTriplet& t : batch) cells[{t.row, t.col}] = t.value;
}

// ---------------------------------------------------------------------------
// DynamicSparseIntervalMatrix
// ---------------------------------------------------------------------------

TEST(DynamicSparseIntervalMatrixTest, UpsertAtAndCounts) {
  DynamicSparseIntervalMatrix m(4, 3);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.DeltaFraction(), 0.0);

  EXPECT_EQ(m.Upsert(1, 2, Interval(1.0, 2.0)), Interval());
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.At(1, 2), Interval(1.0, 2.0));
  EXPECT_EQ(m.At(0, 0), Interval());

  // Last write wins, and the previous value comes back.
  EXPECT_EQ(m.Upsert(1, 2, Interval(3.0, 4.0)), Interval(1.0, 2.0));
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.At(1, 2), Interval(3.0, 4.0));
}

TEST(DynamicSparseIntervalMatrixTest, RevisionOfBaseCellCountsOnce) {
  const SparseIntervalMatrix base = SparseIntervalMatrix::FromTriplets(
      3, 3, {{0, 0, Interval(1.0, 1.0)}, {2, 1, Interval(2.0, 3.0)}});
  DynamicSparseIntervalMatrix m(base);
  EXPECT_EQ(m.nnz(), 2u);

  // Revising a base cell shadows it instead of duplicating it.
  EXPECT_EQ(m.Upsert(2, 1, Interval(5.0, 6.0)), Interval(2.0, 3.0));
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.delta_size(), 1u);
  EXPECT_EQ(m.At(2, 1), Interval(5.0, 6.0));

  // A new cell grows the count.
  m.Upsert(1, 2, Interval(7.0, 7.0));
  EXPECT_EQ(m.nnz(), 3u);

  const SparseIntervalMatrix snap = m.Snapshot();
  EXPECT_EQ(snap.nnz(), 3u);
  EXPECT_EQ(snap.At(2, 1), Interval(5.0, 6.0));
  EXPECT_EQ(snap.At(0, 0), Interval(1.0, 1.0));
}

TEST(DynamicSparseIntervalMatrixTest, CompactionPreservesContentAndResetsLog) {
  DynamicSparseIntervalMatrix m(5, 5);
  m.Upsert(0, 1, Interval(1.0, 2.0));
  m.Upsert(4, 4, Interval(-1.0, 1.0));
  EXPECT_EQ(m.delta_size(), 2u);

  m.Compact();
  EXPECT_EQ(m.delta_size(), 0u);
  EXPECT_EQ(m.base_nnz(), 2u);
  EXPECT_EQ(m.At(0, 1), Interval(1.0, 2.0));
  EXPECT_EQ(m.At(4, 4), Interval(-1.0, 1.0));

  // Threshold trigger: one delta over two base cells is 50% > 25%.
  m.Upsert(2, 2, Interval(3.0, 3.0));
  EXPECT_TRUE(m.MaybeCompact(0.25));
  EXPECT_EQ(m.delta_size(), 0u);
  EXPECT_EQ(m.base_nnz(), 3u);
  EXPECT_FALSE(m.MaybeCompact(0.25));  // empty log: nothing to do
}

TEST(DynamicSparseIntervalMatrixTest,
     SnapshotMatchesFromTripletsUnderInterleavedMutations) {
  Rng rng(91);
  const size_t n = 30, m = 20;
  CellMap shadow = RandomBaseCells(n, m, 3, 0.2, rng);
  DynamicSparseIntervalMatrix dynamic(
      SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(shadow)));

  for (int round = 0; round < 6; ++round) {
    const std::vector<IntervalTriplet> batch =
        RandomBatch(shadow, n, m, /*revisions=*/7, /*inserts=*/5, rng);
    dynamic.ApplyBatch(batch);
    ApplyToShadow(shadow, batch);
    if (round == 2) dynamic.Compact();         // explicit compaction
    if (round == 4) dynamic.MaybeCompact(0.0);  // threshold compaction
    ExpectSameMatrix(dynamic.Snapshot(), SparseIntervalMatrix::FromTriplets(
                                             n, m, ToTriplets(shadow)));
    EXPECT_EQ(dynamic.nnz(), shadow.size());
  }
}

// ---------------------------------------------------------------------------
// StreamingIsvd
// ---------------------------------------------------------------------------

void ExpectResultsAgree(const IsvdResult& expected, const IsvdResult& actual,
                        double tol) {
  ASSERT_EQ(expected.rank(), actual.rank());
  for (size_t j = 0; j < expected.rank(); ++j) {
    EXPECT_NEAR(expected.sigma[j].lo, actual.sigma[j].lo, tol);
    EXPECT_NEAR(expected.sigma[j].hi, actual.sigma[j].hi, tol);
  }
  const IntervalMatrix recon_expected = expected.Reconstruct();
  const IntervalMatrix recon_actual = actual.Reconstruct();
  EXPECT_TRUE(recon_actual.ApproxEquals(recon_expected, tol))
      << "max lower diff "
      << (recon_actual.lower() - recon_expected.lower()).MaxAbs()
      << ", max upper diff "
      << (recon_actual.upper() - recon_expected.upper()).MaxAbs();
}

class StreamingIsvdStrategyTest : public ::testing::TestWithParam<int> {};

// The acceptance-criterion property test: batches arrive, the streaming
// decomposition refreshes incrementally (warm-started, early-exiting), and
// after every batch the result matches a from-scratch decomposition of the
// same matrix — same solver family, cold — to 1e-8.
TEST_P(StreamingIsvdStrategyTest, IncrementalMatchesFromScratchPerBatch) {
  const int strategy = GetParam();
  Rng rng(500 + strategy);
  const size_t n = 40, m = 24, rank = 4;
  CellMap shadow = RandomBaseCells(n, m, 4, 0.35, rng);

  StreamingIsvdOptions options;
  StreamingIsvd streaming(
      strategy, rank,
      SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(shadow)), options);
  EXPECT_FALSE(streaming.last_stats().warm);  // initial build is cold

  size_t warm_refreshes = 0;
  for (int round = 0; round < 4; ++round) {
    const std::vector<IntervalTriplet> batch =
        RandomBatch(shadow, n, m, /*revisions=*/6, /*inserts=*/3, rng);
    streaming.ApplyBatch(batch);
    ApplyToShadow(shadow, batch);

    const IsvdResult& incremental = streaming.Refresh();
    warm_refreshes += streaming.last_stats().warm ? 1 : 0;

    const IsvdResult from_scratch =
        RunIsvd(strategy,
                SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(shadow)),
                rank, options.isvd);
    SCOPED_TRACE(::testing::Message() << "round " << round);
    ExpectResultsAgree(from_scratch, incremental, 1e-8);
  }
  // The point of the subsystem: these small batches refresh warm.
  EXPECT_GT(warm_refreshes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, StreamingIsvdStrategyTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST_P(StreamingIsvdStrategyTest, WarmStartNeverSlowerThanColdInIterations) {
  const int strategy = GetParam();
  Rng rng(700 + strategy);
  const size_t n = 50, m = 30, rank = 4;
  CellMap shadow = RandomBaseCells(n, m, 4, 0.3, rng);
  const SparseIntervalMatrix base =
      SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(shadow));

  StreamingIsvdOptions options;
  options.convergence_tol = 1e-10;
  StreamingIsvd streaming(strategy, rank, base, options);
  const size_t cold_iterations = streaming.last_stats().iterations;
  ASSERT_GT(cold_iterations, 0u);

  const std::vector<IntervalTriplet> batch =
      RandomBatch(shadow, n, m, /*revisions=*/5, /*inserts=*/2, rng);
  streaming.ApplyBatch(batch);
  streaming.Refresh();
  ASSERT_TRUE(streaming.last_stats().warm);
  EXPECT_LE(streaming.last_stats().iterations, cold_iterations);
}

TEST(StreamingIsvdTest, LargeBatchFallsBackToFullRecompute) {
  Rng rng(801);
  const size_t n = 30, m = 18;
  CellMap shadow = RandomBaseCells(n, m, 3, 0.3, rng);

  StreamingIsvdOptions options;
  options.warm_delta_bound = 0.05;
  StreamingIsvd streaming(
      2, 3, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(shadow)),
      options);

  // Rewrite far more than 5% of the cells: the delta-log bound trips.
  std::vector<IntervalTriplet> flood;
  for (size_t i = 0; i < n; ++i) {
    flood.push_back({i, i % m, Interval(2.0, 2.5)});
  }
  streaming.ApplyBatch(flood);
  ApplyToShadow(shadow, flood);
  streaming.Refresh();
  EXPECT_FALSE(streaming.last_stats().warm);

  // And the cold result still matches from-scratch exactly (same path).
  const IsvdResult from_scratch = RunIsvd(
      2, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(shadow)), 3,
      options.isvd);
  ExpectResultsAgree(from_scratch, streaming.result(), 1e-12);
}

TEST(StreamingIsvdTest, DriftBoundFallsBackToFullRecompute) {
  Rng rng(802);
  const size_t n = 30, m = 18;
  CellMap shadow = RandomBaseCells(n, m, 3, 0.3, rng);

  StreamingIsvdOptions options;
  options.warm_drift_bound = 0.01;
  StreamingIsvd streaming(
      3, 3, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(shadow)),
      options);

  // One cell, but with a change whose Frobenius mass dwarfs 1% of σ₁.
  streaming.ApplyBatch({{0, 0, Interval(500.0, 600.0)}});
  streaming.Refresh();
  EXPECT_FALSE(streaming.last_stats().warm);
}

TEST(StreamingIsvdTest, StartsFromEmptyMatrix) {
  StreamingIsvdOptions options;
  StreamingIsvd streaming(
      1, 2, SparseIntervalMatrix::FromTriplets(12, 8, {}), options);
  EXPECT_EQ(streaming.result().rank(), 2u);
  for (const Interval& s : streaming.result().sigma) {
    EXPECT_NEAR(s.lo, 0.0, 1e-12);
    EXPECT_NEAR(s.hi, 0.0, 1e-12);
  }

  // First real content arrives; the refresh must recompute cold (a zero
  // spectrum carries no subspace worth warm-starting from).
  streaming.ApplyBatch({{0, 0, Interval(1.0, 2.0)},
                        {3, 4, Interval(0.5, 0.75)},
                        {11, 7, Interval(2.0, 2.0)}});
  streaming.Refresh();
  EXPECT_FALSE(streaming.last_stats().warm);
  EXPECT_GT(streaming.result().sigma[0].hi, 0.5);
}

// shard_rows > 0 routes every refresh through the zero-copy sharded view.
// The decomposition must match a from-scratch run of the same strategy
// (sharded always resolves GramSide::kMtM, so pin the reference to it),
// and sharded_snapshot() must expose a view matching the frozen matrix —
// what the serving layer freezes into its snapshots.
TEST(StreamingIsvdTest, ShardedRefreshMatchesFromScratch) {
  Rng rng(910);
  const size_t n = 40, m = 24, rank = 4;
  CellMap shadow = RandomBaseCells(n, m, 4, 0.35, rng);

  StreamingIsvdOptions options;
  options.shard_rows = 8;
  options.isvd.gram_side = GramSide::kMtM;
  StreamingIsvd streaming(
      3, rank, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(shadow)),
      options);
  ASSERT_NE(streaming.sharded_snapshot(), nullptr);
  EXPECT_EQ(streaming.sharded_snapshot()->rows(), n);
  EXPECT_EQ(streaming.sharded_snapshot()->cols(), m);
  EXPECT_EQ(streaming.sharded_snapshot()->num_shards(), 5u);

  for (int round = 0; round < 3; ++round) {
    const std::vector<IntervalTriplet> batch =
        RandomBatch(shadow, n, m, /*revisions=*/6, /*inserts=*/3, rng);
    streaming.ApplyBatch(batch);
    ApplyToShadow(shadow, batch);

    const IsvdResult& incremental = streaming.Refresh();
    EXPECT_EQ(streaming.sharded_snapshot()->nnz(), shadow.size());

    const IsvdResult from_scratch =
        RunIsvd(3,
                SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(shadow)),
                rank, options.isvd);
    SCOPED_TRACE(::testing::Message() << "round " << round);
    ExpectResultsAgree(from_scratch, incremental, 1e-8);
  }
}

}  // namespace
}  // namespace ivmf
