// Malformed-input and round-trip fuzz tests for the triplet reader
// (io/triplets.h). The reader faces on-disk data, so every corrupt stream —
// out-of-range indices, duplicate cells, truncated files, hostile size
// declarations — must come back as std::nullopt, never as a crash or an
// unbounded allocation. Deterministic RNG keeps every "fuzz" case
// reproducible; the CI sanitizer job gives the mutation sweep its teeth.

#include "io/triplets.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "sparse/sparse_interval_matrix.h"

namespace ivmf {
namespace {

// A random signed sparse interval matrix for round-trip material.
SparseIntervalMatrix RandomSparse(size_t rows, size_t cols, double fill,
                                  Rng& rng) {
  std::vector<IntervalTriplet> triplets;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (!rng.Bernoulli(fill)) continue;
      const double base = rng.Uniform(-2.0, 2.0);
      const double span = rng.Bernoulli(0.3) ? 0.0 : rng.Uniform(0.0, 1.0);
      triplets.push_back({i, j, Interval(base, base + span)});
    }
  }
  return SparseIntervalMatrix::FromTriplets(rows, cols, std::move(triplets));
}

TEST(TripletsFuzzTest, MalformedInputsErrorWithoutCrashing) {
  const char* cases[] = {
      // Empty / header-only / whitespace.
      "",
      "%%ivmf interval coordinate",
      "%%ivmf interval coordinate\n",
      "%%ivmf interval coordinate\n   \n\t\n",
      // Size line too short, non-numeric, or with trailing tokens.
      "%%ivmf interval coordinate\n2 2\n",
      "%%ivmf interval coordinate\ntwo 2 1\n1 1 0 1\n",
      "%%ivmf interval coordinate\n2 2 1 9\n1 1 0 1\n",
      // Entry count mismatches (truncated file / extra entries).
      "%%ivmf interval coordinate\n2 2 2\n1 1 0 1\n",
      "%%ivmf interval coordinate\n2 2 1\n1 1 0 1\n2 2 0 1\n",
      // Truncated mid-entry.
      "%%ivmf interval coordinate\n2 2 1\n1 1 0\n",
      "%%ivmf interval coordinate\n2 2 1\n1\n",
      // Out-of-range / zero (1-based format) indices.
      "%%ivmf interval coordinate\n2 2 1\n3 1 0 1\n",
      "%%ivmf interval coordinate\n2 2 1\n1 3 0 1\n",
      "%%ivmf interval coordinate\n2 2 1\n0 1 0 1\n",
      // Duplicate cell: inconsistent with the declared count.
      "%%ivmf interval coordinate\n2 2 2\n1 1 0 1\n1 1 2 3\n",
      // Misordered interval.
      "%%ivmf interval coordinate\n2 2 1\n1 1 2 1\n",
      // Non-finite endpoints.
      "%%ivmf interval coordinate\n2 2 1\n1 1 nan 1\n",
      "%%ivmf interval coordinate\n2 2 1\n1 1 0 inf\n",
      // Hostile size declarations: must error, not allocate.
      "%%ivmf interval coordinate\n2 2 999999999999999999\n",
      "%%ivmf interval coordinate\n-1 2 1\n1 1 0 1\n",
      "%%ivmf interval coordinate\n2 -1 1\n1 1 0 1\n",
      "%%ivmf interval coordinate\n2 2 -1\n1 1 0 1\n",
      "%%ivmf interval coordinate\n999999999999 2 0\n",
      "%%ivmf interval coordinate\n2 999999999999 0\n",
      // nnz exceeding the cell count.
      "%%ivmf interval coordinate\n2 2 5\n1 1 0 1\n1 2 0 1\n2 1 0 1\n"
      "2 2 0 1\n1 1 0 2\n",
      // Entries on an empty shape.
      "%%ivmf interval coordinate\n0 0 1\n1 1 0 1\n",
  };
  for (const char* text : cases) {
    EXPECT_FALSE(SparseIntervalMatrixFromTriplets(text).has_value())
        << "accepted malformed input: " << text;
  }
}

TEST(TripletsFuzzTest, ValidEdgeShapesParse) {
  // Empty matrices and empty patterns stay valid.
  EXPECT_TRUE(SparseIntervalMatrixFromTriplets(
                  "%%ivmf interval coordinate\n0 0 0\n")
                  .has_value());
  EXPECT_TRUE(SparseIntervalMatrixFromTriplets(
                  "%%ivmf interval coordinate\n5 3 0\n")
                  .has_value());
  const auto full = SparseIntervalMatrixFromTriplets(
      "%%ivmf interval coordinate\n2 2 4\n1 1 0 1\n1 2 -1 1\n2 1 2 2\n"
      "2 2 -3 -2\n");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->nnz(), 4u);
  EXPECT_FALSE(full->IsNonNegative());
}

TEST(TripletsFuzzTest, DuplicateCellSemanticsMatchFromTripletsUnderMergeMode) {
  // The unified duplicate-cell contract: the same observation stream must
  // yield the same matrix whether it enters through the in-memory
  // constructor (hull merge) or the reader in kMergeHull mode. The default
  // strict reader keeps rejecting the stream.
  const std::vector<IntervalTriplet> observations{
      {0, 0, Interval(1.0, 2.0)},
      {1, 2, Interval(0.5, 0.5)},
      {0, 0, Interval(0.25, 1.5)},   // duplicate of (0, 0)
      {1, 2, Interval(-1.0, 0.0)},   // duplicate of (1, 2)
  };
  std::string text = "%%ivmf interval coordinate\n2 3 4\n";
  for (const IntervalTriplet& t : observations) {
    text += std::to_string(t.row + 1) + " " + std::to_string(t.col + 1) + " " +
            std::to_string(t.value.lo) + " " + std::to_string(t.value.hi) +
            "\n";
  }

  EXPECT_FALSE(SparseIntervalMatrixFromTriplets(text).has_value());
  EXPECT_FALSE(
      SparseIntervalMatrixFromTriplets(text, DuplicatePolicy::kReject)
          .has_value());

  const auto merged =
      SparseIntervalMatrixFromTriplets(text, DuplicatePolicy::kMergeHull);
  ASSERT_TRUE(merged.has_value());
  const SparseIntervalMatrix direct =
      SparseIntervalMatrix::FromTriplets(2, 3, observations);
  ASSERT_EQ(merged->nnz(), direct.nnz());
  EXPECT_EQ(merged->row_ptr(), direct.row_ptr());
  EXPECT_EQ(merged->col_idx(), direct.col_idx());
  EXPECT_EQ(merged->lower_values(), direct.lower_values());
  EXPECT_EQ(merged->upper_values(), direct.upper_values());
  EXPECT_EQ(merged->At(0, 0), Interval(0.25, 2.0));
  EXPECT_EQ(merged->At(1, 2), Interval(-1.0, 0.5));
}

TEST(TripletsFuzzTest, MergeModeStillRejectsStructurallyMalformedInput) {
  // kMergeHull only relaxes the duplicate-cell rule; every other rejection
  // (wrong line count, bad indices, misordered intervals) stays intact.
  const char* const malformed[] = {
      "%%ivmf interval coordinate\n2 2 2\n1 1 0 1\n",           // missing line
      "%%ivmf interval coordinate\n2 2 1\n3 1 0 1\n",           // row range
      "%%ivmf interval coordinate\n2 2 1\n1 1 2 1\n",           // lo > hi
      "%%ivmf interval coordinate\n2 2 1\n1 1 0 1\n1 2 0 1\n",  // extra line
  };
  for (const char* text : malformed) {
    EXPECT_FALSE(
        SparseIntervalMatrixFromTriplets(text, DuplicatePolicy::kMergeHull)
            .has_value())
        << text;
  }
}

TEST(TripletsFuzzTest, RoundTripPreservesEveryMatrix) {
  Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t rows = 1 + static_cast<size_t>(rng.Uniform() * 40);
    const size_t cols = 1 + static_cast<size_t>(rng.Uniform() * 25);
    const double fill = rng.Uniform(0.0, 0.6);
    const SparseIntervalMatrix m = RandomSparse(rows, cols, fill, rng);
    // Precision 17 round-trips doubles exactly.
    const std::string text = SparseIntervalMatrixToTriplets(m, 17);
    const auto parsed = SparseIntervalMatrixFromTriplets(text);
    ASSERT_TRUE(parsed.has_value()) << "trial " << trial;
    ASSERT_EQ(parsed->rows(), m.rows());
    ASSERT_EQ(parsed->cols(), m.cols());
    ASSERT_EQ(parsed->nnz(), m.nnz());
    EXPECT_EQ(parsed->row_ptr(), m.row_ptr());
    EXPECT_EQ(parsed->col_idx(), m.col_idx());
    EXPECT_EQ(parsed->lower_values(), m.lower_values());
    EXPECT_EQ(parsed->upper_values(), m.upper_values());
  }
}

TEST(TripletsFuzzTest, TruncationAtEveryLineErrorsOrParses) {
  Rng rng(2025);
  const SparseIntervalMatrix m = RandomSparse(12, 9, 0.4, rng);
  const std::string text = SparseIntervalMatrixToTriplets(m);
  // Cut after every newline: only the full text (or a prefix that happens
  // to describe a complete smaller stream — impossible here, the size line
  // pins nnz) may parse.
  for (size_t pos = 0; pos < text.size(); ++pos) {
    if (text[pos] != '\n') continue;
    const auto parsed =
        SparseIntervalMatrixFromTriplets(text.substr(0, pos + 1));
    if (pos + 1 == text.size()) {
      EXPECT_TRUE(parsed.has_value());
    } else if (parsed.has_value()) {
      // A shorter valid parse can only be the nnz == 0 prefix of an empty
      // pattern; with nnz > 0 every proper prefix must fail.
      EXPECT_EQ(m.nnz(), 0u);
    }
  }
  // Raw byte truncations (mid-line) must never crash.
  for (size_t len = 0; len < text.size(); len += 7) {
    (void)SparseIntervalMatrixFromTriplets(text.substr(0, len));
  }
}

TEST(TripletsFuzzTest, SingleByteMutationsNeverCrashTheReader) {
  Rng rng(2026);
  const SparseIntervalMatrix m = RandomSparse(8, 6, 0.5, rng);
  const std::string text = SparseIntervalMatrixToTriplets(m);
  const char alphabet[] = "0123456789 .-+eE\n%x";
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = text;
    const size_t pos = static_cast<size_t>(rng.Uniform() * mutated.size());
    const char c =
        alphabet[static_cast<size_t>(rng.Uniform() * (sizeof(alphabet) - 1))];
    switch (static_cast<int>(rng.Uniform() * 3)) {
      case 0:
        mutated[pos] = c;
        break;
      case 1:
        mutated.insert(pos, 1, c);
        break;
      default:
        mutated.erase(pos, 1);
        break;
    }
    const auto parsed = SparseIntervalMatrixFromTriplets(mutated);
    if (parsed.has_value()) {
      // Whatever survives mutation must at least be a coherent matrix.
      EXPECT_TRUE(parsed->IsProper());
      EXPECT_LE(parsed->nnz(), parsed->rows() * parsed->cols());
    }
  }
}

}  // namespace
}  // namespace ivmf
