// Concurrency stress tests for the serving layer, built to run under
// ThreadSanitizer (the sanitize-thread CI job): readers race the background
// writer through many batch/refresh/publish cycles, and every invariant the
// publication contract promises is re-checked after the fact —
//
//   * epochs observed by each reader are monotone (RCU swap is ordered),
//   * every sampled prediction is bitwise-reproducible from the retained
//     snapshot of its epoch (snapshots are deeply immutable),
//   * every retained snapshot matches a from-scratch decomposition of the
//     ratings known to be applied by its epoch (snapshots are internally
//     consistent — factors always pair with the matrix they decompose),
//   * snapshots outlive their epoch for as long as a reader holds them
//     (no use-after-free; ASan/TSan would flag otherwise).

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/sparse_isvd.h"
#include "serve/serving_engine.h"
#include "serve/snapshot_registry.h"
#include "serve/serving_snapshot.h"

namespace ivmf {
namespace {

using CellMap = std::map<std::pair<size_t, size_t>, Interval>;

std::vector<IntervalTriplet> ToTriplets(const CellMap& cells) {
  std::vector<IntervalTriplet> triplets;
  triplets.reserve(cells.size());
  for (const auto& [key, value] : cells) {
    triplets.push_back({key.first, key.second, value});
  }
  return triplets;
}

CellMap RandomBaseCells(size_t n, size_t m, size_t k, double fill, Rng& rng) {
  Matrix u(n, k), v(m, k);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < k; ++j) u(i, j) = rng.Uniform(0.1, 1.0);
  for (size_t i = 0; i < m; ++i)
    for (size_t j = 0; j < k; ++j) v(i, j) = rng.Uniform(0.1, 1.0);
  CellMap cells;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (!rng.Bernoulli(fill)) continue;
      double base = 0.0;
      for (size_t c = 0; c < k; ++c) base += u(i, c) * v(j, c);
      cells[{i, j}] = Interval(base, base + rng.Uniform(0.0, 0.2));
    }
  }
  return cells;
}

// One sampled read, checked against the retained snapshot after the join.
struct Sample {
  uint64_t epoch;
  size_t user, item;
  Interval predicted;
};

// Readers race the background writer through a full ingest stream. All
// verification happens after the join so the hot loop stays an honest
// acquire/predict race.
TEST(ServingStressTest, ReadersRaceWriterThroughRefreshCycles) {
  Rng rng(31);
  const size_t n = 60, m = 30, rank = 4;
  const int strategy = 2;
  const size_t kReaders = 4;
  const size_t kBatches = 12;
  const size_t kCellsPerBatch = 5;

  CellMap cells = RandomBaseCells(n, m, 4, 0.3, rng);
  const CellMap base_cells = cells;
  const SparseIntervalMatrix base =
      SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells));

  // Retain every published snapshot, keyed by epoch, via the publish hook.
  std::mutex history_mu;
  std::map<uint64_t, std::shared_ptr<const ServingSnapshot>> history;
  ServingEngineOptions options;
  options.on_publish =
      [&](const std::shared_ptr<const ServingSnapshot>& snapshot) {
        std::lock_guard<std::mutex> lock(history_mu);
        history[snapshot->epoch()] = snapshot;
      };

  ServingEngine engine(strategy, rank, base, options);
  engine.StartWriter();

  std::atomic<bool> done{false};
  std::vector<size_t> regressions(kReaders, 0);
  std::vector<std::vector<Sample>> samples(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t tid = 0; tid < kReaders; ++tid) {
    readers.emplace_back([&, tid] {
      Rng thread_rng(1000 + tid);
      uint64_t last_epoch = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::shared_ptr<const ServingSnapshot> snapshot =
            engine.Acquire();
        if (snapshot->epoch() < last_epoch) ++regressions[tid];
        last_epoch = snapshot->epoch();
        const size_t user = thread_rng.UniformIndex(n);
        const size_t item = thread_rng.UniformIndex(m);
        const Interval predicted = snapshot->Predict(user, item);
        if (samples[tid].size() < 2000) {
          samples[tid].push_back({snapshot->epoch(), user, item, predicted});
        }
      }
    });
  }

  // The writer-side ingest stream: batches of revisions and arrivals,
  // recording the expected cell state after each batch.
  std::vector<CellMap> expected_after;  // expected_after[b] = state after b+1
  Rng batch_rng(32);
  for (size_t b = 0; b < kBatches; ++b) {
    std::vector<IntervalTriplet> batch;
    for (size_t c = 0; c < kCellsPerBatch; ++c) {
      const size_t i = batch_rng.UniformIndex(n);
      const size_t j = batch_rng.UniformIndex(m);
      const double lo = batch_rng.Uniform(0.5, 4.5);
      const Interval value(lo, lo + batch_rng.Uniform(0.0, 0.5));
      batch.push_back({i, j, value});
      cells[{i, j}] = value;
    }
    expected_after.push_back(cells);
    engine.Submit(std::move(batch));
    // Give the writer a chance to pick distinct batches up; coalescing is
    // legal either way, this just makes multiple epochs likely.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Wait until everything submitted has been applied and published.
  while (engine.cells_applied() < kBatches * kCellsPerBatch) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  engine.StopWriter();

  // (1) Per-reader epoch monotonicity.
  for (size_t tid = 0; tid < kReaders; ++tid) {
    EXPECT_EQ(regressions[tid], 0u) << "reader " << tid;
    EXPECT_FALSE(samples[tid].empty()) << "reader " << tid << " never read";
  }

  // (2) Every sample is bitwise-reproducible from the retained snapshot of
  // its epoch — snapshots never mutated after publication.
  size_t checked = 0;
  for (const std::vector<Sample>& reader_samples : samples) {
    for (const Sample& s : reader_samples) {
      const auto it = history.find(s.epoch);
      ASSERT_NE(it, history.end()) << "reader saw unpublished epoch "
                                   << s.epoch;
      const Interval again = it->second->Predict(s.user, s.item);
      ASSERT_EQ(again.lo, s.predicted.lo) << "epoch " << s.epoch;
      ASSERT_EQ(again.hi, s.predicted.hi) << "epoch " << s.epoch;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);

  // (3) The final epoch's snapshot equals the from-scratch decomposition of
  // the fully-applied stream, cell-observations included.
  const auto final_snapshot = engine.Acquire();
  EXPECT_EQ(final_snapshot->epoch(), history.rbegin()->first);
  for (const auto& [key, value] : cells) {
    EXPECT_EQ(final_snapshot->Observed(key.first, key.second), value);
  }
  StreamingIsvdOptions streaming_options;
  const IsvdResult cold = RunIsvd(
      strategy, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells)),
      rank, streaming_options.isvd);
  ASSERT_EQ(final_snapshot->rank(), cold.rank());
  // Warm-started refreshes agree with a cold run to the Krylov convergence
  // tolerance, not machine precision — 1e-6 leaves margin over the ~1e-8
  // residual while still catching any real divergence.
  const IntervalMatrix recon = cold.Reconstruct();
  for (size_t i = 0; i < n; i += 9) {
    for (size_t j = 0; j < m; j += 7) {
      const Interval predicted = final_snapshot->Predict(i, j);
      EXPECT_NEAR(predicted.lo, recon.At(i, j).lo, 1e-6);
      EXPECT_NEAR(predicted.hi, recon.At(i, j).hi, 1e-6);
    }
  }

  // (4) Intermediate epochs were internally consistent: each retained
  // snapshot observed EXACTLY the state after some number of whole batches
  // (the writer may coalesce batches but never splits or reorders them).
  // Compare over the union of all cells ever written; missing = zero.
  const auto state_after = [&](size_t b) -> const CellMap& {
    return b == 0 ? base_cells : expected_after[b - 1];
  };
  for (const auto& [epoch, snapshot] : history) {
    bool matched = false;
    for (size_t b = 0; !matched && b <= expected_after.size(); ++b) {
      const CellMap& state = state_after(b);
      bool all = true;
      for (const auto& [key, value] : cells) {  // `cells` holds every key
        const auto it = state.find(key);
        const Interval want = it == state.end() ? Interval() : it->second;
        if (!(snapshot->Observed(key.first, key.second) == want)) {
          all = false;
          break;
        }
      }
      matched = all;
    }
    EXPECT_TRUE(matched) << "epoch " << epoch
                         << " observed a non-prefix cell state";
  }
}

// Registry-only tight race: one publisher swapping cheap snapshots as fast
// as it can while several threads spin on Acquire. Maximizes the
// acquire/store interleaving density for TSan with no refresh work in the
// loop.
TEST(ServingStressTest, RegistryAcquirePublishTightRace) {
  Rng rng(33);
  const size_t n = 6, m = 4;
  const CellMap cells = RandomBaseCells(n, m, 2, 0.8, rng);
  StreamingIsvd streaming(
      2, 2, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells)));

  SnapshotRegistry registry;
  registry.Publish(std::make_shared<const ServingSnapshot>(
      1, streaming.result(), streaming.matrix_snapshot()));

  const size_t kSpinners = 4;
  const uint64_t kPublications = 3000;
  std::atomic<bool> done{false};
  std::vector<size_t> regressions(kSpinners, 0);
  std::vector<std::thread> spinners;
  spinners.reserve(kSpinners);
  for (size_t tid = 0; tid < kSpinners; ++tid) {
    spinners.emplace_back([&, tid] {
      uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::shared_ptr<const ServingSnapshot> snapshot =
            registry.Acquire();
        if (snapshot->epoch() < last) ++regressions[tid];
        last = snapshot->epoch();
        // Touch the payload so a freed snapshot cannot go unnoticed.
        (void)snapshot->Predict(0, 0);
      }
    });
  }

  // All publications share the same factors and matrix; only the epoch
  // differs. Publication cost is one make_shared plus the atomic swap.
  for (uint64_t epoch = 2; epoch <= kPublications; ++epoch) {
    registry.Publish(std::make_shared<const ServingSnapshot>(
        epoch, streaming.result(), streaming.matrix_snapshot()));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : spinners) t.join();

  for (size_t tid = 0; tid < kSpinners; ++tid) {
    EXPECT_EQ(regressions[tid], 0u) << "spinner " << tid;
  }
  EXPECT_EQ(registry.published(), kPublications);
  EXPECT_EQ(registry.Acquire()->epoch(), kPublications);
}

// A reader that holds a snapshot across many subsequent publications can
// still use it: the grace period is the shared_ptr refcount, not a fixed
// window.
TEST(ServingStressTest, HeldSnapshotSurvivesManyPublications) {
  Rng rng(34);
  const size_t n = 20, m = 10;
  CellMap cells = RandomBaseCells(n, m, 2, 0.4, rng);
  ServingEngine engine(
      2, 2, SparseIntervalMatrix::FromTriplets(n, m, ToTriplets(cells)));

  const std::shared_ptr<const ServingSnapshot> held = engine.Acquire();
  const Interval before = held->Predict(3, 3);

  Rng batch_rng(35);
  for (size_t b = 0; b < 8; ++b) {
    const size_t i = batch_rng.UniformIndex(n);
    const size_t j = batch_rng.UniformIndex(m);
    engine.Submit({{i, j, Interval(2.0, 2.5)}});
    engine.Step();
  }
  EXPECT_EQ(engine.epoch(), 9u);

  // The held epoch-1 snapshot is untouched by eight newer epochs.
  EXPECT_EQ(held->epoch(), 1u);
  const Interval after = held->Predict(3, 3);
  EXPECT_EQ(after.lo, before.lo);
  EXPECT_EQ(after.hi, before.hi);
}

}  // namespace
}  // namespace ivmf
