#include "factor/interval_pca.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "linalg/svd.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::OrthonormalityError;
using ::ivmf::testing::RandomIntervalMatrix;
using ::ivmf::testing::RandomMatrix;

TEST(IntervalPcaTest, DegenerateIntervalsMatchScalarPca) {
  // Zero-width intervals: both methods reduce to classical PCA of the data.
  Rng rng(1);
  const Matrix data = RandomMatrix(30, 6, rng);
  const IntervalMatrix m = IntervalMatrix::FromScalar(data);
  for (const IntervalPcaMethod method :
       {IntervalPcaMethod::kCenters, IntervalPcaMethod::kMidpointRadius}) {
    IntervalPcaOptions options;
    options.method = method;
    const IntervalPcaResult pca = ComputeIntervalPca(m, 3, options);
    EXPECT_LT(OrthonormalityError(pca.components), 1e-9);
    // Scores are degenerate intervals.
    EXPECT_DOUBLE_EQ(pca.scores.Span().MaxAbs(), 0.0);
    // Explained variances are non-negative descending.
    for (size_t j = 1; j < pca.explained_variance.size(); ++j)
      EXPECT_GE(pca.explained_variance[j - 1],
                pca.explained_variance[j] - 1e-12);
  }
}

TEST(IntervalPcaTest, MeanIsColumnAverageOfMidpoints) {
  Rng rng(2);
  const IntervalMatrix m = RandomIntervalMatrix(20, 4, rng);
  const IntervalPcaResult pca = ComputeIntervalPca(m, 2);
  const Matrix mid = m.Mid();
  for (size_t j = 0; j < 4; ++j) {
    double mean = 0.0;
    for (size_t i = 0; i < 20; ++i) mean += mid(i, j);
    EXPECT_NEAR(pca.mean[j], mean / 20.0, 1e-12);
  }
}

TEST(IntervalPcaTest, ScoresContainMidpointProjections) {
  Rng rng(3);
  const IntervalMatrix m = RandomIntervalMatrix(25, 5, rng);
  const IntervalPcaResult pca = ComputeIntervalPca(m, 3);
  // The projection of the midpoint row must lie inside the interval score.
  const Matrix mid = m.Mid();
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t k = 0; k < 3; ++k) {
      double proj = 0.0;
      for (size_t j = 0; j < m.cols(); ++j)
        proj += (mid(i, j) - pca.mean[j]) * pca.components(j, k);
      EXPECT_GE(proj, pca.scores.At(i, k).lo - 1e-9);
      EXPECT_LE(proj, pca.scores.At(i, k).hi + 1e-9);
    }
  }
}

TEST(IntervalPcaTest, MidpointRadiusSeesIntervalSizeInformation) {
  // Two features: feature 0 has tight intervals with varying midpoints,
  // feature 1 has constant midpoint but huge spans. Centers-PCA ranks
  // feature 0 first; MR-PCA gives feature 1 substantial variance.
  Rng rng(4);
  IntervalMatrix m(40, 2);
  for (size_t i = 0; i < 40; ++i) {
    const double v = rng.Uniform(-1.0, 1.0);
    m.Set(i, 0, Interval(v - 0.01, v + 0.01));
    m.Set(i, 1, Interval(-6.0, 6.0));  // constant midpoint 0, span 12
  }
  IntervalPcaOptions centers;
  centers.method = IntervalPcaMethod::kCenters;
  IntervalPcaOptions mr;
  mr.method = IntervalPcaMethod::kMidpointRadius;
  const IntervalPcaResult c = ComputeIntervalPca(m, 2, centers);
  const IntervalPcaResult r = ComputeIntervalPca(m, 2, mr);
  // Centers: top axis is feature 0 (midpoint variance ~1/3 vs ~0).
  EXPECT_GT(std::abs(c.components(0, 0)), 0.9);
  // MR: span²/12 = 12 dominates, so the top axis is feature 1.
  EXPECT_GT(std::abs(r.components(1, 0)), 0.9);
}

TEST(IntervalPcaTest, ExplainedRatioIsMonotone) {
  Rng rng(5);
  const IntervalMatrix m = RandomIntervalMatrix(30, 6, rng);
  const IntervalPcaResult pca = ComputeIntervalPca(m, 0);
  double prev = 0.0;
  for (size_t k = 1; k <= 6; ++k) {
    const double ratio = pca.ExplainedRatio(k);
    EXPECT_GE(ratio, prev - 1e-12);
    prev = ratio;
  }
  EXPECT_NEAR(pca.ExplainedRatio(6), 1.0, 1e-9);
}

TEST(IntervalPcaTest, FullRankReconstructionCoversData) {
  Rng rng(6);
  const IntervalMatrix m = RandomIntervalMatrix(20, 4, rng);
  const IntervalPcaResult pca = ComputeIntervalPca(m, 0);
  const IntervalMatrix recon = IntervalPcaReconstruct(pca);
  EXPECT_EQ(recon.rows(), m.rows());
  EXPECT_EQ(recon.cols(), m.cols());
  // Full-rank interval projection+backprojection widens but must contain
  // the original midpoints.
  EXPECT_TRUE(recon.ContainsMatrix(m.Mid(), 1e-6));
}

TEST(IntervalPcaTest, LowRankCapturesPlantedStructure) {
  // Rank-1 planted data with small interval noise: one component explains
  // nearly everything.
  Rng rng(7);
  IntervalMatrix m(30, 5);
  std::vector<double> direction{0.5, -0.3, 0.8, 0.1, -0.2};
  for (size_t i = 0; i < 30; ++i) {
    const double t = rng.Uniform(-2.0, 2.0);
    for (size_t j = 0; j < 5; ++j) {
      const double v = t * direction[j];
      m.Set(i, j, Interval(v - 0.01, v + 0.01));
    }
  }
  const IntervalPcaResult pca = ComputeIntervalPca(m, 0);
  EXPECT_GT(pca.ExplainedRatio(1), 0.95);
}

}  // namespace
}  // namespace ivmf
