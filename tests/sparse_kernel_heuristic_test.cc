// Pins the kAuto kernel-backend heuristic: ChooseAutoBackend as a pure
// function of the row-length statistics, and the end-to-end resolution on
// short-row vs long-row matrix fixtures (monolithic and sharded), with a
// differential check that whatever backend the heuristic picks computes
// the same matvec as the scalar reference.
//
// The thresholds are load-bearing for the checked-in perf baselines: the
// CF bench matrices (mean row length >= ~12.5) must keep resolving to the
// packed-CSR path those baselines were recorded with, while genuinely
// short-row matrices take SELL. A threshold change must update this test
// AND regenerate BENCH_*.json.

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "sparse/block_matrix.h"
#include "sparse/sparse_interval_matrix.h"
#include "sparse/sparse_kernels.h"

namespace ivmf {
namespace {

using Endpoint = SparseIntervalMatrix::Endpoint;

TEST(ChooseAutoBackendTest, PinnedDecisions) {
  // Short mean rows: SELL pays for its padding/permutation.
  EXPECT_EQ(spk::ChooseAutoBackend(4.0, 0.3, true), spk::Backend::kSell);
  EXPECT_EQ(spk::ChooseAutoBackend(11.9, 0.0, true), spk::Backend::kSell);
  // Moderately short but highly irregular rows: SELL's row permutation
  // evens out the imbalance.
  EXPECT_EQ(spk::ChooseAutoBackend(20.0, 2.0, true), spk::Backend::kSell);
  // Long regular rows: packed CSR amortizes, keep AVX2.
  EXPECT_EQ(spk::ChooseAutoBackend(12.5, 0.5, true), spk::Backend::kAvx2);
  EXPECT_EQ(spk::ChooseAutoBackend(40.0, 1.0, true), spk::Backend::kAvx2);
  // Long irregular rows: past the irregular-mean bound SELL stops winning.
  EXPECT_EQ(spk::ChooseAutoBackend(24.0, 5.0, true), spk::Backend::kAvx2);
  // No AVX2: both vectorized formats lose their reason to exist.
  EXPECT_EQ(spk::ChooseAutoBackend(4.0, 0.3, false), spk::Backend::kScalar);
  EXPECT_EQ(spk::ChooseAutoBackend(40.0, 1.0, false), spk::Backend::kScalar);
}

TEST(ChooseAutoBackendTest, ThresholdConstantsAreTheDocumentedOnes) {
  EXPECT_DOUBLE_EQ(spk::kSellMeanRowThreshold, 12.0);
  EXPECT_DOUBLE_EQ(spk::kSellIrregularMeanRowThreshold, 24.0);
  EXPECT_DOUBLE_EQ(spk::kSellIrregularCvThreshold, 1.5);
}

// rows x cols with exactly `row_nnz` entries per row (spread evenly), plus
// optionally a few dense rows to push the length variance up.
SparseIntervalMatrix MakeFixture(size_t rows, size_t cols, size_t row_nnz,
                                 size_t dense_rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<IntervalTriplet> entries;
  for (size_t i = 0; i < rows; ++i) {
    const size_t n = i < dense_rows ? cols : row_nnz;
    const size_t stride = cols / n;
    for (size_t k = 0; k < n; ++k) {
      const double a = rng.Uniform(-2.0, 2.0);
      entries.push_back({i, k * stride, Interval(a, a + rng.Uniform())});
    }
  }
  return SparseIntervalMatrix::FromTriplets(rows, cols, std::move(entries));
}

// The environment override beats the row-statistics heuristic; these
// fixtures only pin the heuristic when no override is active.
bool EnvOverrideActive() {
  return spk::EnvBackend() != spk::Backend::kAuto;
}

TEST(AutoResolutionTest, ShortRowFixtureResolvesSell) {
  if (EnvOverrideActive()) GTEST_SKIP() << "IVMF_SPARSE_KERNEL set";
  // mean 4 nnz/row, regular — far below the SELL threshold.
  const SparseIntervalMatrix m = MakeFixture(512, 256, 4, 0, 11);
  const spk::Backend want =
      spk::Avx2Supported() ? spk::Backend::kSell : spk::Backend::kScalar;
  EXPECT_EQ(m.ResolvedKernel(), want);
  const ShardedSparseIntervalMatrix sharded =
      ShardedSparseIntervalMatrix::FromCsr(m, 128);
  EXPECT_EQ(sharded.resolved_kernel(), want);
}

TEST(AutoResolutionTest, LongRowFixtureResolvesPackedCsr) {
  if (EnvOverrideActive()) GTEST_SKIP() << "IVMF_SPARSE_KERNEL set";
  // mean 32 nnz/row, regular — packed CSR territory.
  const SparseIntervalMatrix m = MakeFixture(256, 256, 32, 0, 12);
  const spk::Backend want =
      spk::Avx2Supported() ? spk::Backend::kAvx2 : spk::Backend::kScalar;
  EXPECT_EQ(m.ResolvedKernel(), want);
  const ShardedSparseIntervalMatrix sharded =
      ShardedSparseIntervalMatrix::FromCsr(m, 64);
  EXPECT_EQ(sharded.resolved_kernel(), want);
}

// Whatever kAuto picks must agree with the forced-scalar reference to the
// kernels' differential bound on the same matrix.
void ExpectMatvecMatchesScalar(const SparseIntervalMatrix& m,
                               const std::string& what) {
  Rng rng(99);
  std::vector<double> x(m.cols());
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);

  SparseIntervalMatrix scalar = m;
  scalar.set_kernel(spk::Backend::kScalar);

  std::vector<double> y_auto(m.rows()), y_ref(m.rows());
  for (const Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
    m.Multiply(e, x, y_auto);
    scalar.Multiply(e, x, y_ref);
    for (size_t i = 0; i < m.rows(); ++i) {
      const double tol = 1e-12 * std::max(1.0, std::fabs(y_ref[i]));
      EXPECT_LE(std::fabs(y_auto[i] - y_ref[i]), tol)
          << what << " row " << i;
    }
  }
}

TEST(AutoResolutionTest, ResolvedBackendsMatchScalarReference) {
  ExpectMatvecMatchesScalar(MakeFixture(512, 256, 4, 0, 21), "short-row");
  ExpectMatvecMatchesScalar(MakeFixture(256, 256, 32, 0, 22), "long-row");
  // Irregular: a few dense rows on a short-row background.
  ExpectMatvecMatchesScalar(MakeFixture(512, 256, 3, 6, 23), "irregular");
}

}  // namespace
}  // namespace ivmf
