// Concurrency tests for the observability layer, designed to run under
// ThreadSanitizer (the IVMF_SANITIZE=thread CI job picks them up via the
// "obs" test-name match): instruments are hammered from many threads while
// readers snapshot and export concurrently, and the totals must still come
// out exact — counters and histogram counts are lossless under contention,
// not merely race-free.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace ivmf::obs {
namespace {

constexpr int kThreads = 4;

TEST(ObsConcurrencyTest, CounterAddsAreLossless) {
  constexpr uint64_t kPerThread = 20000;
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsConcurrencyTest, HistogramRecordsAreLossless) {
  constexpr uint64_t kPerThread = 5000;
  Histogram histogram;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      // Thread t records the constant (t + 1): count and sum have exact
      // expected values, min/max are known, and contention still spreads
      // over several buckets.
      const double value = static_cast<double>(t + 1);
      for (uint64_t i = 0; i < kPerThread; ++i) histogram.Record(value);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  // 1 + 2 + ... + kThreads, each kPerThread times.
  const double expected_sum =
      static_cast<double>(kPerThread) * kThreads * (kThreads + 1) / 2.0;
  EXPECT_DOUBLE_EQ(histogram.total(), expected_sum);
  EXPECT_DOUBLE_EQ(histogram.min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), static_cast<double>(kThreads));
}

TEST(ObsConcurrencyTest, GaugeWritesStayAtomic) {
  Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 5000; ++i) {
        gauge.Set(static_cast<double>(t + 1));
        gauge.Add(0.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // No torn writes: the final value is one of the values actually written.
  const double value = gauge.value();
  EXPECT_GE(value, 1.0);
  EXPECT_LE(value, static_cast<double>(kThreads));
  EXPECT_DOUBLE_EQ(value, static_cast<double>(static_cast<int>(value)));
}

TEST(ObsConcurrencyTest, RegistryHandsOutOneInstrumentUnderContention) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves the instrument by name each iteration; all
      // resolutions must reach the same counter.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        registry.GetCounter("obs_cc.contended", {{"k", "v"}}).Add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.Snapshot().CounterValue("obs_cc.contended{k=v}"),
            kThreads * kPerThread);
}

TEST(ObsConcurrencyTest, SnapshotRacesWritersSafely) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& counter = registry.GetCounter("obs_cc.racing");
  Histogram& histogram = registry.GetHistogram("obs_cc.racing.seconds");
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter, &histogram] {
      for (int i = 0; i < 5000; ++i) {
        counter.Add(1);
        histogram.Record(1e-3 * (1 + i % 100));
      }
    });
  }
  std::thread reader([&registry, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      // Mid-run snapshots must be internally sane, never torn.
      EXPECT_LE(snapshot.CounterValue("obs_cc.racing"),
                static_cast<uint64_t>(kThreads) * 5000);
      (void)snapshot.ToJson();
      (void)snapshot.ToPrometheusText();
    }
  });
  for (std::thread& thread : writers) thread.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  const MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.CounterValue("obs_cc.racing"),
            static_cast<uint64_t>(kThreads) * 5000);
  EXPECT_EQ(final_snapshot.histograms.at("obs_cc.racing.seconds").count,
            static_cast<uint64_t>(kThreads) * 5000);
}

TEST(ObsConcurrencyTest, SpansRaceExportSafely) {
  TraceCollector& collector = TraceCollector::Global();
  collector.Start(/*ring_capacity=*/256);
  std::atomic<bool> done{false};

  std::vector<std::thread> tracers;
  for (int t = 0; t < kThreads; ++t) {
    tracers.emplace_back([] {
      for (int i = 0; i < 2000; ++i) {
        TraceSpan outer("obs_cc.outer");
        TraceSpan inner("obs_cc.inner");
      }
    });
  }
  // Export concurrently with active span recording: the JSON must always be
  // structurally valid even while rings churn underneath.
  std::thread exporter([&collector, &done] {
    std::string error;
    while (!done.load(std::memory_order_relaxed)) {
      const std::string json = collector.ChromeTraceJson();
      EXPECT_TRUE(ivmf::testing::ValidateJson(json, &error)) << error;
      (void)collector.total_dropped();
    }
  });
  for (std::thread& thread : tracers) thread.join();
  done.store(true, std::memory_order_relaxed);
  exporter.join();
  collector.Stop();

  const std::string json = collector.ChromeTraceJson();
  std::string error;
  EXPECT_TRUE(ivmf::testing::ValidateJson(json, &error)) << error;
  EXPECT_NE(json.find("obs_cc.outer"), std::string::npos);
}

TEST(ObsConcurrencyTest, EnableToggleRacesWritersSafely) {
  Counter counter;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter, &done] {
      while (!done.load(std::memory_order_relaxed)) counter.Add(1);
    });
  }
  for (int i = 0; i < 2000; ++i) {
    SetEnabled(i % 2 == 0);
  }
  SetEnabled(true);
  done.store(true, std::memory_order_relaxed);
  for (std::thread& thread : writers) thread.join();
  // No exact total is defined while the flag flips; the invariant is simply
  // no data race (TSan) and a readable final value.
  (void)counter.value();
}

}  // namespace
}  // namespace ivmf::obs
