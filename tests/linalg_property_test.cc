// Additional invariance / consistency properties of the linear-algebra
// substrate: SVD under scaling, permutation and orthogonal transforms;
// eigendecomposition under diagonal shifts; pseudo-inverse of orthonormal
// factors; condition-number behaviour.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "linalg/eig.h"
#include "linalg/lu.h"
#include "linalg/pinv.h"
#include "linalg/svd.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomMatrix;
using ::ivmf::testing::RandomSymmetric;

TEST(SvdInvarianceTest, ScalingScalesSingularValues) {
  Rng rng(1);
  const Matrix m = RandomMatrix(8, 6, rng);
  const SvdResult base = ComputeSvd(m);
  const SvdResult scaled = ComputeSvd(m * (-2.5));
  for (size_t j = 0; j < base.sigma.size(); ++j)
    EXPECT_NEAR(scaled.sigma[j], 2.5 * base.sigma[j], 1e-9);
}

TEST(SvdInvarianceTest, TransposeKeepsSingularValues) {
  Rng rng(2);
  const Matrix m = RandomMatrix(9, 5, rng);
  const SvdResult a = ComputeSvd(m);
  const SvdResult b = ComputeSvd(m.Transpose());
  for (size_t j = 0; j < a.sigma.size(); ++j)
    EXPECT_NEAR(a.sigma[j], b.sigma[j], 1e-9);
}

TEST(SvdInvarianceTest, RowPermutationKeepsSingularValues) {
  Rng rng(3);
  const Matrix m = RandomMatrix(7, 5, rng);
  Matrix permuted(7, 5);
  const size_t perm[7] = {3, 0, 6, 1, 5, 2, 4};
  for (size_t i = 0; i < 7; ++i) permuted.SetRow(perm[i], m.Row(i));
  const SvdResult a = ComputeSvd(m);
  const SvdResult b = ComputeSvd(permuted);
  for (size_t j = 0; j < a.sigma.size(); ++j)
    EXPECT_NEAR(a.sigma[j], b.sigma[j], 1e-9);
}

TEST(SvdInvarianceTest, OrthogonalTransformKeepsSingularValues) {
  Rng rng(4);
  const Matrix m = RandomMatrix(8, 8, rng);
  // Build an orthogonal Q from the SVD of another random matrix.
  const Matrix q = ComputeSvd(RandomMatrix(8, 8, rng)).u;
  const SvdResult a = ComputeSvd(m);
  const SvdResult b = ComputeSvd(q * m);
  for (size_t j = 0; j < a.sigma.size(); ++j)
    EXPECT_NEAR(a.sigma[j], b.sigma[j], 1e-8);
}

TEST(SvdInvarianceTest, FrobeniusNormEqualsSigmaNorm) {
  Rng rng(5);
  const Matrix m = RandomMatrix(10, 7, rng);
  const SvdResult svd = ComputeSvd(m);
  double sigma_sq = 0.0;
  for (double s : svd.sigma) sigma_sq += s * s;
  EXPECT_NEAR(m.FrobeniusNorm(), std::sqrt(sigma_sq), 1e-9);
}

TEST(EigInvarianceTest, DiagonalShiftShiftsEigenvalues) {
  Rng rng(6);
  const Matrix a = RandomSymmetric(10, rng);
  Matrix shifted = a;
  for (size_t i = 0; i < 10; ++i) shifted(i, i) += 3.5;
  const EigResult ea = ComputeSymmetricEig(a);
  const EigResult es = ComputeSymmetricEig(shifted);
  for (size_t j = 0; j < 10; ++j)
    EXPECT_NEAR(es.eigenvalues[j], ea.eigenvalues[j] + 3.5, 1e-9);
}

TEST(EigInvarianceTest, NegationReversesSpectrum) {
  Rng rng(7);
  const Matrix a = RandomSymmetric(8, rng);
  const EigResult ea = ComputeSymmetricEig(a);
  const EigResult en = ComputeSymmetricEig(a * (-1.0));
  for (size_t j = 0; j < 8; ++j)
    EXPECT_NEAR(en.eigenvalues[j], -ea.eigenvalues[8 - 1 - j], 1e-9);
}

TEST(EigInvarianceTest, IdempotentProjectorHasZeroOneSpectrum) {
  // P = Q Qᵀ for orthonormal Q (n x r) has eigenvalues 1 (r times), 0.
  Rng rng(8);
  const Matrix q = ComputeSvd(RandomMatrix(10, 4, rng)).u;  // 10 x 4
  const Matrix p = q * q.Transpose();
  const EigResult eig = ComputeSymmetricEig(p);
  for (size_t j = 0; j < 4; ++j) EXPECT_NEAR(eig.eigenvalues[j], 1.0, 1e-9);
  for (size_t j = 4; j < 10; ++j) EXPECT_NEAR(eig.eigenvalues[j], 0.0, 1e-9);
}

TEST(PinvPropertyTest, PinvOfOrthonormalIsTranspose) {
  Rng rng(9);
  const Matrix q = ComputeSvd(RandomMatrix(9, 4, rng)).u;
  const Matrix pinv = PseudoInverse(q);
  EXPECT_TRUE(pinv.ApproxEquals(q.Transpose(), 1e-8));
}

TEST(PinvPropertyTest, PinvOfPinvIsOriginal) {
  Rng rng(10);
  const Matrix a = RandomMatrix(6, 4, rng);
  const Matrix back = PseudoInverse(PseudoInverse(a));
  EXPECT_TRUE(back.ApproxEquals(a, 1e-7));
}

TEST(PinvPropertyTest, PinvSolvesLeastSquares) {
  // x = A⁺ b minimizes ||Ax - b||; the residual is orthogonal to range(A).
  Rng rng(11);
  const Matrix a = RandomMatrix(10, 4, rng);
  std::vector<double> b(10);
  for (double& v : b) v = rng.Uniform(-1.0, 1.0);
  const Matrix pinv = PseudoInverse(a);
  std::vector<double> x(4, 0.0);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 10; ++j) x[i] += pinv(i, j) * b[j];
  // residual r = Ax - b; check Aᵀ r = 0.
  std::vector<double> r(10);
  for (size_t i = 0; i < 10; ++i) {
    r[i] = -b[i];
    for (size_t j = 0; j < 4; ++j) r[i] += a(i, j) * x[j];
  }
  for (size_t j = 0; j < 4; ++j) {
    double dot = 0.0;
    for (size_t i = 0; i < 10; ++i) dot += a(i, j) * r[i];
    EXPECT_NEAR(dot, 0.0, 1e-8);
  }
}

TEST(ConditionPropertyTest, ScalingLeavesConditionUnchanged) {
  Rng rng(12);
  const Matrix a = RandomMatrix(6, 6, rng);
  EXPECT_NEAR(ConditionNumber(a), ConditionNumber(a * 7.0), 1e-6);
}

TEST(ConditionPropertyTest, InverseHasSameCondition) {
  Rng rng(13);
  const Matrix a = RandomMatrix(5, 5, rng) + 3.0 * Matrix::Identity(5);
  const auto inv = Inverse(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_NEAR(ConditionNumber(a), ConditionNumber(*inv),
              1e-6 * ConditionNumber(a));
}

TEST(LuPropertyTest, SolveMatchesPinvForSquareNonsingular) {
  Rng rng(14);
  const Matrix a = RandomMatrix(6, 6, rng) + 2.0 * Matrix::Identity(6);
  std::vector<double> b(6);
  for (double& v : b) v = rng.Uniform(-1.0, 1.0);
  LuDecomposition lu(a);
  ASSERT_FALSE(lu.IsSingular());
  const std::vector<double> x_lu = lu.Solve(b);
  const Matrix pinv = PseudoInverse(a);
  for (size_t i = 0; i < 6; ++i) {
    double x_p = 0.0;
    for (size_t j = 0; j < 6; ++j) x_p += pinv(i, j) * b[j];
    EXPECT_NEAR(x_lu[i], x_p, 1e-8);
  }
}

}  // namespace
}  // namespace ivmf
