#include "sparse/sparse_interval_matrix.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "data/ratings.h"
#include "interval/interval_matrix.h"
#include "io/triplets.h"
#include "sparse/sparse_gram_operator.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::MaxAbsDiff;
using ::ivmf::testing::RandomMatrix;

using Endpoint = SparseIntervalMatrix::Endpoint;

// A random sparse interval matrix with non-negative entries: each cell is
// present with probability `fill`.
SparseIntervalMatrix RandomSparse(size_t rows, size_t cols, double fill,
                                  Rng& rng) {
  std::vector<IntervalTriplet> triplets;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (!rng.Bernoulli(fill)) continue;
      const double base = rng.Uniform(0.1, 1.0);
      triplets.push_back(
          {i, j, Interval(base, base + rng.Uniform(0.0, 0.5))});
    }
  }
  return SparseIntervalMatrix::FromTriplets(rows, cols, std::move(triplets));
}

TEST(SparseIntervalMatrixTest, FromTripletsBasics) {
  std::vector<IntervalTriplet> triplets{
      {1, 2, Interval(1.0, 2.0)},
      {0, 1, Interval(-0.5, 0.5)},
      {1, 0, Interval(3.0, 3.0)},
  };
  const SparseIntervalMatrix m =
      SparseIntervalMatrix::FromTriplets(2, 3, triplets);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_NEAR(m.FillFraction(), 0.5, 1e-15);
  EXPECT_EQ(m.At(0, 1), Interval(-0.5, 0.5));
  EXPECT_EQ(m.At(1, 0), Interval(3.0, 3.0));
  EXPECT_EQ(m.At(1, 2), Interval(1.0, 2.0));
  // Absent entries are the scalar zero interval.
  EXPECT_EQ(m.At(0, 0), Interval(0.0, 0.0));
  EXPECT_EQ(m.At(1, 1), Interval(0.0, 0.0));
  // CSR pattern is sorted per row.
  EXPECT_EQ(m.row_ptr(), (std::vector<size_t>{0, 1, 3}));
  EXPECT_EQ(m.col_idx(), (std::vector<size_t>{1, 0, 2}));
  EXPECT_TRUE(m.IsProper());
  EXPECT_FALSE(m.IsNonNegative());
}

TEST(SparseIntervalMatrixTest, DuplicateTripletsMergeToHull) {
  std::vector<IntervalTriplet> triplets{
      {0, 0, Interval(1.0, 2.0)},
      {0, 0, Interval(0.5, 1.5)},
      {0, 0, Interval(1.2, 2.5)},
  };
  const SparseIntervalMatrix m =
      SparseIntervalMatrix::FromTriplets(1, 1, triplets);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.At(0, 0), Interval(0.5, 2.5));
}

TEST(SparseIntervalMatrixTest, DuplicateTripletsRejectedUnderRejectPolicy) {
  // The strict policy matches the hardened triplet reader's default: a
  // duplicated cell is a precondition violation, not a merge.
  std::vector<IntervalTriplet> triplets{
      {0, 0, Interval(1.0, 2.0)},
      {0, 0, Interval(0.5, 1.5)},
  };
  EXPECT_DEATH(SparseIntervalMatrix::FromTriplets(1, 1, triplets,
                                                  DuplicatePolicy::kReject),
               "duplicate cell");
  // Unique triplets pass under either policy.
  const SparseIntervalMatrix m = SparseIntervalMatrix::FromTriplets(
      2, 2, {{0, 0, Interval(1.0, 2.0)}, {1, 1, Interval(0.5, 1.5)}},
      DuplicatePolicy::kReject);
  EXPECT_EQ(m.nnz(), 2u);
}

TEST(SparseIntervalMatrixTest, FromCsrAdoptsArraysAndChecksInvariants) {
  const SparseIntervalMatrix m = SparseIntervalMatrix::FromCsr(
      2, 3, {0, 2, 3}, {0, 2, 1}, {1.0, -2.0, 3.0}, {1.5, -1.0, 3.0});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.At(0, 0), Interval(1.0, 1.5));
  EXPECT_EQ(m.At(0, 2), Interval(-2.0, -1.0));
  EXPECT_EQ(m.At(1, 1), Interval(3.0, 3.0));
  EXPECT_EQ(m.At(1, 0), Interval());

  EXPECT_DEATH(SparseIntervalMatrix::FromCsr(2, 3, {0, 2, 3}, {2, 0, 1},
                                             {1.0, -2.0, 3.0},
                                             {1.5, -1.0, 3.0}),
               "ascending");
  EXPECT_DEATH(
      SparseIntervalMatrix::FromCsr(1, 2, {0, 1}, {5}, {1.0}, {1.0}),
      "outside the shape");
}

TEST(SparseIntervalMatrixTest, DenseRoundTrip) {
  Rng rng(11);
  const SparseIntervalMatrix m = RandomSparse(17, 23, 0.3, rng);
  const IntervalMatrix dense = m.ToDense();
  const SparseIntervalMatrix back = SparseIntervalMatrix::FromDense(dense);
  EXPECT_EQ(back.nnz(), m.nnz());
  EXPECT_TRUE(back.ToDense().ApproxEquals(dense, 0.0));
}

TEST(SparseIntervalMatrixTest, TransposeMatchesDense) {
  Rng rng(12);
  const SparseIntervalMatrix m = RandomSparse(15, 31, 0.2, rng);
  const SparseIntervalMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), m.cols());
  EXPECT_EQ(t.cols(), m.rows());
  EXPECT_EQ(t.nnz(), m.nnz());
  EXPECT_TRUE(t.ToDense().ApproxEquals(m.ToDense().Transpose(), 0.0));
}

TEST(SparseIntervalMatrixTest, MultiplyMatchesDense) {
  Rng rng(13);
  const SparseIntervalMatrix m = RandomSparse(20, 35, 0.25, rng);
  const IntervalMatrix dense = m.ToDense();
  std::vector<double> x(35);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);

  for (const Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
    const Matrix& d = e == Endpoint::kLower ? dense.lower() : dense.upper();
    std::vector<double> y;
    m.Multiply(e, x, y);
    ASSERT_EQ(y.size(), 20u);
    for (size_t i = 0; i < y.size(); ++i) {
      double expect = 0.0;
      for (size_t j = 0; j < x.size(); ++j) expect += d(i, j) * x[j];
      EXPECT_NEAR(y[i], expect, 1e-12);
    }
  }
}

TEST(SparseIntervalMatrixTest, MultiplyTransposeMatchesDense) {
  Rng rng(14);
  const SparseIntervalMatrix m = RandomSparse(20, 35, 0.25, rng);
  const IntervalMatrix dense = m.ToDense();
  std::vector<double> x(20);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);

  std::vector<double> y;
  m.MultiplyTranspose(Endpoint::kUpper, x, y);
  ASSERT_EQ(y.size(), 35u);
  for (size_t j = 0; j < y.size(); ++j) {
    double expect = 0.0;
    for (size_t i = 0; i < x.size(); ++i) expect += dense.upper()(i, j) * x[i];
    EXPECT_NEAR(y[j], expect, 1e-12);
  }
}

TEST(SparseIntervalMatrixTest, ParallelMultiplyTransposeMatchesSerialScatter) {
  // Enough rows to engage the per-thread partial accumulators (the parallel
  // path starts at 2048 rows per worker). The parallel reduction reorders
  // the summation by fixed row blocks, so the result must match the serial
  // scatter to roundoff and be bit-stable across calls.
  Rng rng(91);
  std::vector<IntervalTriplet> triplets;
  const size_t rows = 6000, cols = 37;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (!rng.Bernoulli(0.2)) continue;
      const double base = rng.Uniform(-1.0, 1.0);
      triplets.push_back({i, j, Interval(base, base + rng.Uniform(0.0, 0.5))});
    }
  }
  const SparseIntervalMatrix m =
      SparseIntervalMatrix::FromTriplets(rows, cols, std::move(triplets));
  std::vector<double> x(rows);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);

  for (const Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
    // Serial scatter reference (the pre-parallelization algorithm).
    std::vector<double> ref(cols, 0.0);
    for (const IntervalTriplet& t : m.ToTriplets()) {
      ref[t.col] += (e == Endpoint::kLower ? t.value.lo : t.value.hi) * x[t.row];
    }
    std::vector<double> y1, y2;
    m.MultiplyTranspose(e, x, y1);
    m.MultiplyTranspose(e, x, y2);
    ASSERT_EQ(y1.size(), cols);
    for (size_t j = 0; j < cols; ++j) {
      EXPECT_NEAR(y1[j], ref[j], 1e-10 * (1.0 + std::abs(ref[j])));
      // Determinism: repeated calls are bit-identical.
      EXPECT_EQ(y1[j], y2[j]);
    }
  }
}

TEST(SparseIntervalMatrixTest, MultiplyMidMatchesDenseMidpoint) {
  Rng rng(92);
  const SparseIntervalMatrix m = RandomSparse(40, 23, 0.3, rng);
  const Matrix mid = m.ToDense().Mid();
  std::vector<double> x(23), y;
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  m.MultiplyMid(x, y);
  ASSERT_EQ(y.size(), 40u);
  for (size_t i = 0; i < y.size(); ++i) {
    double expect = 0.0;
    for (size_t j = 0; j < 23; ++j) expect += mid(i, j) * x[j];
    EXPECT_NEAR(y[i], expect, 1e-12);
  }
}

TEST(SparseIntervalMatrixTest, MultiplyDenseMatchesDenseProduct) {
  Rng rng(15);
  const SparseIntervalMatrix m = RandomSparse(18, 26, 0.3, rng);
  const Matrix b = RandomMatrix(26, 7, rng);
  const Matrix expect = m.ToDense().lower() * b;
  const Matrix got = m.MultiplyDense(Endpoint::kLower, b);
  EXPECT_LT(MaxAbsDiff(got, expect), 1e-12);
}

TEST(SparseIntervalMatrixTest, IntervalMultiplyDenseMatchesIntervalMatMul) {
  Rng rng(16);
  const SparseIntervalMatrix m = RandomSparse(14, 22, 0.35, rng);
  const Matrix b = RandomMatrix(22, 5, rng);  // mixed-sign scalar operand
  const IntervalMatrix expect = IntervalMatMul(m.ToDense(), b);
  const IntervalMatrix got = m.IntervalMultiplyDense(b);
  EXPECT_TRUE(got.ApproxEquals(expect, 1e-12));
}

TEST(SparseIntervalMatrixTest, RowAndColNormsMatchDense) {
  Rng rng(17);
  const SparseIntervalMatrix m = RandomSparse(12, 19, 0.4, rng);
  const IntervalMatrix dense = m.ToDense();
  const std::vector<double> row = m.RowNorms(Endpoint::kLower);
  const std::vector<double> col = m.ColNorms(Endpoint::kUpper);
  ASSERT_EQ(row.size(), 12u);
  ASSERT_EQ(col.size(), 19u);
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_NEAR(row[i], Norm2(dense.lower().Row(i)), 1e-12);
  }
  for (size_t j = 0; j < col.size(); ++j) {
    EXPECT_NEAR(col[j], Norm2(dense.upper().Col(j)), 1e-12);
  }
}

TEST(SparseGramOperatorTest, ApplyMatchesDenseGram) {
  Rng rng(18);
  const SparseIntervalMatrix m = RandomSparse(25, 16, 0.3, rng);
  const SparseIntervalMatrix mt = m.Transpose();
  const IntervalMatrix dense = m.ToDense();
  std::vector<double> x(16);
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);

  for (const Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
    const Matrix& d = e == Endpoint::kLower ? dense.lower() : dense.upper();
    const Matrix gram = d.Transpose() * d;
    const SparseGramOperator op(m, mt, e);
    EXPECT_EQ(op.Dim(), 16u);
    std::vector<double> y;
    op.Apply(x, y);
    ASSERT_EQ(y.size(), 16u);
    for (size_t i = 0; i < y.size(); ++i) {
      double expect = 0.0;
      for (size_t j = 0; j < x.size(); ++j) expect += gram(i, j) * x[j];
      EXPECT_NEAR(y[i], expect, 1e-10);
    }
  }
}

TEST(SparseGramOperatorTest, DenseGramMatchesDenseProduct) {
  Rng rng(19);
  const SparseIntervalMatrix m = RandomSparse(30, 12, 0.3, rng);
  const Matrix expect =
      m.ToDense().upper().Transpose() * m.ToDense().upper();
  const Matrix got = SparseGramOperator::DenseGram(m, Endpoint::kUpper);
  EXPECT_LT(MaxAbsDiff(got, expect), 1e-12);
}

// -- Triplet I/O -------------------------------------------------------------

TEST(SparseGramOperatorTest, DenseGramEndpointsMatchAlgorithm1OnSignedData) {
  // Signed entries: the four-product endpoints must equal the dense
  // IntervalMatMul(M†ᵀ, M†) construction term for term.
  Rng rng(93);
  std::vector<IntervalTriplet> triplets;
  for (size_t i = 0; i < 30; ++i) {
    for (size_t j = 0; j < 12; ++j) {
      if (!rng.Bernoulli(0.4)) continue;
      const double base = rng.Uniform(-1.0, 1.0);
      triplets.push_back({i, j, Interval(base, base + rng.Uniform(0.0, 0.6))});
    }
  }
  const SparseIntervalMatrix m =
      SparseIntervalMatrix::FromTriplets(30, 12, std::move(triplets));
  ASSERT_FALSE(m.IsNonNegative());

  const IntervalMatrix dense = m.ToDense();
  const IntervalMatrix expected = IntervalMatMul(dense.Transpose(), dense);
  const IntervalMatrix endpoints = SparseGramOperator::DenseGramEndpoints(m);
  EXPECT_LT(MaxAbsDiff(endpoints.lower(), expected.lower()), 1e-13);
  EXPECT_LT(MaxAbsDiff(endpoints.upper(), expected.upper()), 1e-13);
}

TEST(SparseGramOperatorTest, DenseGramEndpointsCollapseOnNonNegativeData) {
  Rng rng(94);
  const SparseIntervalMatrix m = RandomSparse(25, 10, 0.4, rng);
  ASSERT_TRUE(m.IsNonNegative());
  const IntervalMatrix endpoints = SparseGramOperator::DenseGramEndpoints(m);
  EXPECT_LT(MaxAbsDiff(endpoints.lower(),
                       SparseGramOperator::DenseGram(m, Endpoint::kLower)),
            1e-13);
  EXPECT_LT(MaxAbsDiff(endpoints.upper(),
                       SparseGramOperator::DenseGram(m, Endpoint::kUpper)),
            1e-13);
}

TEST(TripletIoTest, StringRoundTrip) {
  Rng rng(20);
  const SparseIntervalMatrix m = RandomSparse(9, 13, 0.3, rng);
  const std::string text = SparseIntervalMatrixToTriplets(m);
  EXPECT_TRUE(LooksLikeTriplets(text));
  const auto back = SparseIntervalMatrixFromTriplets(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->rows(), m.rows());
  EXPECT_EQ(back->cols(), m.cols());
  EXPECT_EQ(back->nnz(), m.nnz());
  EXPECT_TRUE(back->ToDense().ApproxEquals(m.ToDense(), 1e-9));
}

TEST(TripletIoTest, FileRoundTrip) {
  Rng rng(21);
  const SparseIntervalMatrix m = RandomSparse(7, 8, 0.4, rng);
  const std::string path = ::testing::TempDir() + "/ivmf_triplets.tri";
  ASSERT_TRUE(SaveSparseIntervalTriplets(path, m));
  const auto back = LoadSparseIntervalTriplets(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->ToDense().ApproxEquals(m.ToDense(), 1e-9));
}

TEST(TripletIoTest, ParsesCommentsAndArbitraryOrder) {
  const std::string text =
      "%%ivmf interval coordinate\n"
      "% a comment\n"
      "2 2 2\n"
      "% another comment\n"
      "2 2 0.5 1.5\n"
      "1 1 1 1\n";
  const auto m = SparseIntervalMatrixFromTriplets(text);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->At(0, 0), Interval(1.0, 1.0));
  EXPECT_EQ(m->At(1, 1), Interval(0.5, 1.5));
}

TEST(TripletIoTest, RejectsMalformedInput) {
  // Missing header.
  EXPECT_FALSE(SparseIntervalMatrixFromTriplets("1 1 1\n1 1 0 1\n"));
  // Wrong entry count.
  EXPECT_FALSE(SparseIntervalMatrixFromTriplets(
      "%%ivmf interval coordinate\n2 2 2\n1 1 0 1\n"));
  // Out-of-range index.
  EXPECT_FALSE(SparseIntervalMatrixFromTriplets(
      "%%ivmf interval coordinate\n2 2 1\n3 1 0 1\n"));
  // Misordered interval.
  EXPECT_FALSE(SparseIntervalMatrixFromTriplets(
      "%%ivmf interval coordinate\n2 2 1\n1 1 2 1\n"));
  // Trailing garbage on an entry line.
  EXPECT_FALSE(SparseIntervalMatrixFromTriplets(
      "%%ivmf interval coordinate\n2 2 1\n1 1 0 1 junk\n"));
  EXPECT_FALSE(LooksLikeTriplets("1.0:2.0, 3.5\n"));
}

// -- Sparse data constructions ----------------------------------------------

TEST(SparseRatingsTest, SparseAndDenseGeneratorsAgree) {
  RatingsConfig config;
  config.num_users = 60;
  config.num_items = 90;
  config.fill = 0.2;
  config.seed = 77;
  const SparseRatingsData sparse = GenerateSparseRatings(config);
  const RatingsData dense = GenerateRatings(config);
  EXPECT_EQ(sparse.item_genre, dense.item_genre);
  const RatingsData densified = DensifyRatings(sparse);
  EXPECT_TRUE(densified.ratings == dense.ratings);
  EXPECT_TRUE(densified.mask == dense.mask);
}

TEST(SparseRatingsTest, SparseCfMatchesDenseCfExactly) {
  RatingsConfig config;
  config.num_users = 50;
  config.num_items = 70;
  config.fill = 0.25;
  config.seed = 78;
  const SparseRatingsData sparse = GenerateSparseRatings(config);
  const double alpha = 0.3;
  const SparseIntervalMatrix cf_sparse = SparseCfIntervalMatrix(sparse, alpha);
  const IntervalMatrix cf_dense =
      CfIntervalMatrix(DensifyRatings(sparse), alpha);
  // Same accumulation order, so the two constructions agree bit-for-bit.
  EXPECT_TRUE(cf_sparse.ToDense().ApproxEquals(cf_dense, 0.0));
  EXPECT_TRUE(cf_sparse.IsNonNegative());
}

}  // namespace
}  // namespace ivmf
