#include "tensor/tensor3.h"

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomMatrix;

Tensor3 RandomTensor(size_t i, size_t j, size_t k, Rng& rng) {
  Tensor3 t(i, j, k);
  for (size_t a = 0; a < i; ++a)
    for (size_t b = 0; b < j; ++b)
      for (size_t c = 0; c < k; ++c) t(a, b, c) = rng.Uniform(-1.0, 1.0);
  return t;
}

TEST(Tensor3Test, ElementAccessRoundTrip) {
  Tensor3 t(2, 3, 4);
  t(1, 2, 3) = 42.0;
  t(0, 0, 0) = -1.0;
  EXPECT_DOUBLE_EQ(t(1, 2, 3), 42.0);
  EXPECT_DOUBLE_EQ(t(0, 0, 0), -1.0);
  EXPECT_DOUBLE_EQ(t(1, 0, 0), 0.0);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.dim(2), 4u);
}

TEST(Tensor3Test, UnfoldMode0Layout) {
  // x_{ijk} must land at (i, j + k*J).
  Tensor3 t(2, 3, 2);
  t(1, 2, 1) = 5.0;
  const Matrix u = t.Unfold(0);
  EXPECT_EQ(u.rows(), 2u);
  EXPECT_EQ(u.cols(), 6u);
  EXPECT_DOUBLE_EQ(u(1, 2 + 1 * 3), 5.0);
}

TEST(Tensor3Test, UnfoldMode1Layout) {
  Tensor3 t(2, 3, 2);
  t(1, 2, 1) = 5.0;
  const Matrix u = t.Unfold(1);
  EXPECT_EQ(u.rows(), 3u);
  EXPECT_DOUBLE_EQ(u(2, 1 + 1 * 2), 5.0);
}

TEST(Tensor3Test, UnfoldMode2Layout) {
  Tensor3 t(2, 3, 2);
  t(1, 2, 1) = 5.0;
  const Matrix u = t.Unfold(2);
  EXPECT_EQ(u.rows(), 2u);
  EXPECT_DOUBLE_EQ(u(1, 1 + 2 * 2), 5.0);
}

TEST(Tensor3Test, FoldInvertsUnfold) {
  Rng rng(1);
  const Tensor3 t = RandomTensor(3, 4, 5, rng);
  for (int mode = 0; mode < 3; ++mode) {
    const Tensor3 back = Tensor3::Fold(t.Unfold(mode), mode, 3, 4, 5);
    EXPECT_TRUE(back.ApproxEquals(t, 0.0)) << "mode " << mode;
  }
}

TEST(Tensor3Test, UnfoldPreservesFrobeniusNorm) {
  Rng rng(2);
  const Tensor3 t = RandomTensor(4, 3, 6, rng);
  for (int mode = 0; mode < 3; ++mode)
    EXPECT_NEAR(t.Unfold(mode).FrobeniusNorm(), t.FrobeniusNorm(), 1e-12);
}

TEST(KhatriRaoTest, KnownSmallExample) {
  const Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  const Matrix kr = KhatriRao(a, b);
  // Column 0: kron([1,3],[5,7]) = [5,7,15,21].
  EXPECT_EQ(kr.rows(), 4u);
  EXPECT_DOUBLE_EQ(kr(0, 0), 5);
  EXPECT_DOUBLE_EQ(kr(1, 0), 7);
  EXPECT_DOUBLE_EQ(kr(2, 0), 15);
  EXPECT_DOUBLE_EQ(kr(3, 0), 21);
  // Column 1: kron([2,4],[6,8]) = [12,16,24,32].
  EXPECT_DOUBLE_EQ(kr(0, 1), 12);
  EXPECT_DOUBLE_EQ(kr(3, 1), 32);
}

TEST(Tensor3Test, FromCpMatchesUnfoldingIdentity) {
  // X(0) = A diag(λ) (C ⊙ B)ᵀ — the identity CP-ALS relies on.
  Rng rng(3);
  const Matrix a = RandomMatrix(4, 2, rng);
  const Matrix b = RandomMatrix(3, 2, rng);
  const Matrix c = RandomMatrix(5, 2, rng);
  const std::vector<double> lambda{2.0, -1.5};
  const Tensor3 x = Tensor3::FromCp(a, b, c, lambda);

  Matrix a_scaled = a;
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t t = 0; t < 2; ++t) a_scaled(i, t) *= lambda[t];
  const Matrix expected = a_scaled * KhatriRao(c, b).Transpose();
  EXPECT_TRUE(x.Unfold(0).ApproxEquals(expected, 1e-12));

  // Mode-1 and mode-2 identities as well.
  Matrix b_scaled = b;
  for (size_t i = 0; i < b.rows(); ++i)
    for (size_t t = 0; t < 2; ++t) b_scaled(i, t) *= lambda[t];
  EXPECT_TRUE(x.Unfold(1).ApproxEquals(
      b_scaled * KhatriRao(c, a).Transpose(), 1e-12));
  Matrix c_scaled = c;
  for (size_t i = 0; i < c.rows(); ++i)
    for (size_t t = 0; t < 2; ++t) c_scaled(i, t) *= lambda[t];
  EXPECT_TRUE(x.Unfold(2).ApproxEquals(
      c_scaled * KhatriRao(b, a).Transpose(), 1e-12));
}

TEST(Tensor3Test, ArithmeticAndNorm) {
  Rng rng(4);
  Tensor3 a = RandomTensor(3, 3, 3, rng);
  const Tensor3 b = a;
  a -= b;
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 0.0);
  a += b;
  EXPECT_TRUE(a.ApproxEquals(b, 1e-15));
  EXPECT_GT(b.MaxAbs(), 0.0);
}

}  // namespace
}  // namespace ivmf
