#include "linalg/lu.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomMatrix;

TEST(LuTest, SolvesSmallSystem) {
  // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3.
  const Matrix a = Matrix::FromRows({{2, 1}, {1, 3}});
  LuDecomposition lu(a);
  ASSERT_FALSE(lu.IsSingular());
  const std::vector<double> x = lu.Solve(std::vector<double>{5, 10});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuTest, SolveMatrixRhs) {
  Rng rng(1);
  const Matrix a = RandomMatrix(6, 6, rng);
  const Matrix b = RandomMatrix(6, 3, rng);
  LuDecomposition lu(a);
  ASSERT_FALSE(lu.IsSingular());
  const Matrix x = lu.Solve(b);
  EXPECT_TRUE((a * x).ApproxEquals(b, 1e-10));
}

TEST(LuTest, InverseTimesSelfIsIdentity) {
  Rng rng(2);
  const Matrix a = RandomMatrix(8, 8, rng);
  LuDecomposition lu(a);
  ASSERT_FALSE(lu.IsSingular());
  EXPECT_TRUE((a * lu.Inverse()).ApproxEquals(Matrix::Identity(8), 1e-9));
  EXPECT_TRUE((lu.Inverse() * a).ApproxEquals(Matrix::Identity(8), 1e-9));
}

TEST(LuTest, DetectsSingularMatrix) {
  // Second row is twice the first.
  const Matrix a = Matrix::FromRows({{1, 2}, {2, 4}});
  LuDecomposition lu(a);
  EXPECT_TRUE(lu.IsSingular());
  EXPECT_DOUBLE_EQ(lu.Determinant(), 0.0);
}

TEST(LuTest, DeterminantOfDiagonal) {
  LuDecomposition lu(Matrix::Diagonal({2, 3, 4}));
  EXPECT_NEAR(lu.Determinant(), 24.0, 1e-12);
}

TEST(LuTest, DeterminantSignWithPermutation) {
  // Anti-diagonal: det([[0,1],[1,0]]) = -1.
  const Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  LuDecomposition lu(a);
  EXPECT_NEAR(lu.Determinant(), -1.0, 1e-12);
}

TEST(LuTest, DeterminantMatchesProductRule) {
  Rng rng(3);
  const Matrix a = RandomMatrix(5, 5, rng);
  const Matrix b = RandomMatrix(5, 5, rng);
  const double det_a = LuDecomposition(a).Determinant();
  const double det_b = LuDecomposition(b).Determinant();
  const double det_ab = LuDecomposition(a * b).Determinant();
  EXPECT_NEAR(det_ab, det_a * det_b, 1e-8 * std::abs(det_ab) + 1e-10);
}

TEST(LuTest, PivotingHandlesZeroLeadingEntry) {
  const Matrix a = Matrix::FromRows({{0, 1}, {1, 0}});
  LuDecomposition lu(a);
  ASSERT_FALSE(lu.IsSingular());
  const std::vector<double> x = lu.Solve(std::vector<double>{2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuTest, InverseHelperReturnsNulloptForSingular) {
  EXPECT_FALSE(Inverse(Matrix(3, 3)).has_value());
}

TEST(LuTest, InverseHelperMatchesLu) {
  Rng rng(4);
  const Matrix a = RandomMatrix(4, 4, rng);
  const auto inv = Inverse(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_TRUE((a * *inv).ApproxEquals(Matrix::Identity(4), 1e-10));
}

TEST(LuTest, OneByOne) {
  LuDecomposition lu(Matrix::FromRows({{4.0}}));
  EXPECT_NEAR(lu.Solve(std::vector<double>{8.0})[0], 2.0, 1e-14);
  EXPECT_NEAR(lu.Determinant(), 4.0, 1e-14);
}

class LuSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(LuSizeTest, SolveResidualIsTiny) {
  const int n = GetParam();
  Rng rng(700 + n);
  const Matrix a = RandomMatrix(n, n, rng);
  LuDecomposition lu(a);
  ASSERT_FALSE(lu.IsSingular());
  const Matrix id = Matrix::Identity(n);
  EXPECT_TRUE((a * lu.Inverse()).ApproxEquals(id, 1e-8)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizeTest,
                         ::testing::Values(1, 2, 3, 5, 10, 20, 40));

}  // namespace
}  // namespace ivmf
