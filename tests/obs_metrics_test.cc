// Metrics-layer tests: the log-bucketed histogram must keep the
// nearest-rank percentile contract the old LatencyRecorder pinned (exact
// reference recorder vs. bucketed answers, within the documented relative
// error; exact min / max at p = 0 / 100), the registry must hand back the
// same instrument for the same name + tags forever, the disabled path must
// be a no-op for every instrument kind, and both exporters must emit
// well-formed output (the JSON snapshot is validated with a real parser).

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace ivmf::obs {
namespace {

// The exact nearest-rank reference the Histogram approximates: the
// ceil(p/100 * n)-th smallest sample (the deleted LatencyRecorder's exact
// implementation, kept here as the oracle).
double ExactNearestRank(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * n));
  if (rank < 1) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

// -- Histogram ----------------------------------------------------------------

TEST(HistogramTest, MatchesExactNearestRankOnLatencyFixture) {
  // The 1..100 ms fixture the LatencyRecorder tests pinned, shuffled.
  std::vector<double> values;
  for (int v = 1; v <= 100; ++v) values.push_back(v * 1e-3);
  Rng rng(55);
  for (size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.UniformIndex(i)]);
  }

  Histogram histogram;
  for (const double v : values) histogram.Record(v);

  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_NEAR(histogram.total(), 5.050, 1e-12);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.001);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.100);

  for (const double p : {1.0, 1.5, 10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = ExactNearestRank(values, p);
    EXPECT_NEAR(histogram.Percentile(p), exact,
                exact * Histogram::kMaxRelativeError)
        << "p = " << p;
  }
  // The extremes are tracked exactly, not bucketed.
  EXPECT_DOUBLE_EQ(histogram.Percentile(0), 0.001);
  EXPECT_DOUBLE_EQ(histogram.Percentile(100), 0.100);
}

TEST(HistogramTest, MatchesExactNearestRankOnWideRandomRange) {
  // Six orders of magnitude: the log bucketing must hold its relative
  // error everywhere, not just in the millisecond band.
  Rng rng(77);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(std::pow(10.0, rng.Uniform(-6.0, 0.0)));
  }
  Histogram histogram;
  for (const double v : values) histogram.Record(v);

  for (const double p : {0.5, 5.0, 25.0, 50.0, 75.0, 95.0, 99.9}) {
    const double exact = ExactNearestRank(values, p);
    EXPECT_NEAR(histogram.Percentile(p), exact,
                exact * Histogram::kMaxRelativeError)
        << "p = " << p;
  }
}

TEST(HistogramTest, EmptyAndSingleSample) {
  Histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);

  Histogram one;
  one.Record(3.5);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_DOUBLE_EQ(one.min(), 3.5);
  EXPECT_DOUBLE_EQ(one.max(), 3.5);
  for (const double p : {0.0, 1.0, 50.0, 100.0}) {
    EXPECT_NEAR(one.Percentile(p), 3.5, 3.5 * Histogram::kMaxRelativeError);
  }
}

TEST(HistogramTest, NonPositiveValuesLandInUnderflow) {
  Histogram histogram;
  histogram.Record(0.0);
  histogram.Record(-1.0);
  histogram.Record(2.0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.min(), -1.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 2.0);
  // p50 = 2nd smallest = 0.0: the underflow bucket answers with the
  // tracked minimum (the bucket has no meaningful center).
  EXPECT_DOUBLE_EQ(histogram.Percentile(50), -1.0);
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Rng rng(99);
  Histogram a, b, combined;
  for (int i = 0; i < 500; ++i) {
    const double va = rng.Uniform(0.001, 0.1);
    const double vb = rng.Uniform(0.05, 5.0);
    a.Record(va);
    b.Record(vb);
    combined.Record(va);
    combined.Record(vb);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.total(), combined.total(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  for (const double p : {10.0, 50.0, 95.0}) {
    EXPECT_DOUBLE_EQ(a.Percentile(p), combined.Percentile(p)) << "p = " << p;
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram histogram;
  histogram.Record(1.0);
  histogram.Record(2.0);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.total(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(50), 0.0);
  histogram.Record(4.0);
  EXPECT_DOUBLE_EQ(histogram.min(), 4.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 4.0);
}

// -- Counter / Gauge ----------------------------------------------------------

TEST(CounterTest, AddAccumulates) {
  Counter counter;
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
  gauge.Set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.0);
}

// -- Disabled path ------------------------------------------------------------

TEST(DisabledTest, AllInstrumentsNoOp) {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
  SetEnabled(false);
  counter.Add(7);
  gauge.Set(7.0);
  histogram.Record(7.0);
  SetEnabled(true);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);

  // And the flag round-trips.
  counter.Add(1);
  EXPECT_EQ(counter.value(), 1u);
}

// -- Registry -----------------------------------------------------------------

TEST(MetricKeyTest, SortsTagsAndFormats) {
  EXPECT_EQ(MetricKey("a.b.c", {}), "a.b.c");
  EXPECT_EQ(MetricKey("a", {{"k", "v"}}), "a{k=v}");
  EXPECT_EQ(MetricKey("a", {{"z", "1"}, {"b", "2"}}), "a{b=2,z=1}");
}

TEST(RegistryTest, SameKeySameInstrument) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("obs_test.identity", {{"t", "x"}});
  Counter& b = registry.GetCounter("obs_test.identity", {{"t", "x"}});
  Counter& c = registry.GetCounter("obs_test.identity", {{"t", "y"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
}

TEST(RegistryTest, SnapshotSeesValuesAndPrefixSums) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test.sum", {{"k", "a"}}).Add(3);
  registry.GetCounter("obs_test.sum", {{"k", "b"}}).Add(4);
  registry.GetGauge("obs_test.gauge").Set(1.25);
  Histogram& histogram = registry.GetHistogram("obs_test.hist");
  histogram.Record(0.010);
  histogram.Record(0.020);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("obs_test.sum{k=a}"), 3u);
  EXPECT_EQ(snapshot.CounterSum("obs_test.sum"), 7u);
  EXPECT_EQ(snapshot.CounterValue("obs_test.absent"), 0u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("obs_test.gauge"), 1.25);
  const HistogramStats& stats = snapshot.histograms.at("obs_test.hist");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.min, 0.010);
  EXPECT_DOUBLE_EQ(stats.max, 0.020);
}

TEST(RegistryTest, SnapshotJsonParses) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test.json", {{"quote", "a\"b"}}).Add(1);
  registry.GetHistogram("obs_test.json.hist").Record(0.5);
  const std::string json = registry.Snapshot().ToJson();
  std::string error;
  EXPECT_TRUE(ivmf::testing::ValidateJson(json, &error)) << error << "\n"
                                                         << json;
}

TEST(RegistryTest, PrometheusTextHasSanitizedNames) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("obs_test.prom.calls", {{"kernel", "multiply"}}).Add(5);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("ivmf_obs_test_prom_calls_total{kernel=\"multiply\"}"),
            std::string::npos)
      << text;
  // No raw dots survive in metric names (labels and help lines aside).
  for (size_t pos = text.find("ivmf_"); pos != std::string::npos;
       pos = text.find("ivmf_", pos + 1)) {
    const size_t end = text.find_first_of("{ ", pos);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(text.substr(pos, end - pos).find('.'), std::string::npos);
  }
}

// -- JsonEscape ---------------------------------------------------------------

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape("a\001b"), "a\\u0001b");
}

}  // namespace
}  // namespace ivmf::obs
