// Differential tests for the vectorized sparse-kernel backends.
//
// Every kernel entry point of SparseIntervalMatrix is pinned against an
// independently written naive dense reference, for every backend that can
// be selected per-matrix (scalar, avx2, sell). The shape grid deliberately
// covers the cases a register-blocked kernel gets wrong first: rows whose
// length is not a multiple of the 4/8-wide blocks, empty rows, a single
// row or column, fully dense rows, all nnz concentrated in one row, and
// the empty matrix. Both signed and non-negative value regimes run, since
// the fused endpoint kernels process two value arrays off one pattern.
//
// Tolerance: the blocked kernels sum each row's terms in a fixed blocked
// order with FMA, which legitimately differs from the naive left-to-right
// sum by reassociation-level error. Differences are bounded by
// |diff| <= 1e-12 * max(1, |ref|), far below anything the solvers resolve,
// and exact zero stays exact (empty rows produce bitwise 0.0).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"
#include "sparse/sparse_gram_operator.h"
#include "sparse/sparse_interval_matrix.h"
#include "sparse/sparse_kernels.h"

namespace ivmf {
namespace {

using Endpoint = SparseIntervalMatrix::Endpoint;

// |a - b| <= 1e-12 * max(1, |b|): absolute near zero, relative elsewhere.
void ExpectNear(double a, double b, const std::string& what) {
  const double tol = 1e-12 * std::max(1.0, std::fabs(b));
  EXPECT_LE(std::fabs(a - b), tol) << what << ": got " << a << " want " << b;
}

void ExpectVectorNear(const std::vector<double>& got,
                      const std::vector<double>& want,
                      const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    ExpectNear(got[i], want[i], what + "[" + std::to_string(i) + "]");
  }
}

void ExpectMatrixNear(const Matrix& got, const Matrix& want,
                      const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (size_t i = 0; i < got.rows(); ++i) {
    for (size_t j = 0; j < got.cols(); ++j) {
      ExpectNear(got(i, j), want(i, j),
                 what + "(" + std::to_string(i) + "," + std::to_string(j) +
                     ")");
    }
  }
}

// A test shape: explicit triplets so the pattern is under direct control.
struct Shape {
  std::string name;
  size_t rows = 0;
  size_t cols = 0;
  std::vector<IntervalTriplet> entries;
};

Interval DrawValue(Rng& rng, bool non_negative) {
  const double a = non_negative ? rng.Uniform(0.0, 5.0) : rng.Uniform(-5.0, 5.0);
  const double b = a + rng.Uniform(0.0, 2.0);
  return Interval(a, b);
}

// The curated shape grid (see file comment for why each case exists).
std::vector<Shape> MakeShapes(bool non_negative) {
  Rng rng(non_negative ? 71u : 72u);
  std::vector<Shape> shapes;

  auto fill = [&](const std::string& name, size_t rows, size_t cols,
                  double density) {
    Shape s{name, rows, cols, {}};
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        if (rng.Bernoulli(density)) {
          s.entries.push_back({i, j, DrawValue(rng, non_negative)});
        }
      }
    }
    return s;
  };

  shapes.push_back({"empty_0x0", 0, 0, {}});
  shapes.push_back({"single_cell_1x1",
                    1,
                    1,
                    {{0, 0, DrawValue(rng, non_negative)}}});
  shapes.push_back(fill("single_row_1x17", 1, 17, 0.7));
  shapes.push_back(fill("single_col_17x1", 17, 1, 0.7));
  // Remainder lanes: neither dimension nor any row length is 4/8-aligned.
  shapes.push_back(fill("odd_9x13", 9, 13, 0.45));
  shapes.push_back(fill("odd_17x5", 17, 5, 0.6));
  // Row lengths straddling the 8-wide main loop + 4-wide + scalar tail.
  shapes.push_back(fill("dense_rows_7x23", 7, 23, 1.0));
  // Sparse with many empty rows (density low enough that several rows get
  // nothing at these sizes).
  shapes.push_back(fill("mostly_empty_31x19", 31, 19, 0.08));
  // Everything in one row: the adversarial row-length distribution.
  {
    Shape s{"one_hot_row_16x33", 16, 33, {}};
    for (size_t j = 0; j < 33; ++j) {
      s.entries.push_back({5, j, DrawValue(rng, non_negative)});
    }
    shapes.push_back(s);
  }
  // Large enough that ForRowBlocks could split it under more cores, and
  // that SELL sorting actually reorders rows.
  shapes.push_back(fill("bulk_70x41", 70, 41, 0.3));
  return shapes;
}

std::vector<double> RandomVector(Rng& rng, size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-2.0, 2.0);
  return v;
}

Matrix RandomDense(Rng& rng, size_t rows, size_t cols) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.Uniform(-2.0, 2.0);
  }
  return m;
}

// Naive references, written directly against the triplet list so they share
// no code with the CSR kernels under test.
struct Reference {
  const Shape& shape;

  double Value(const IntervalTriplet& t, Endpoint e) const {
    return e == Endpoint::kLower ? t.value.lo : t.value.hi;
  }

  std::vector<double> MatVec(Endpoint e, const std::vector<double>& x) const {
    std::vector<double> y(shape.rows, 0.0);
    for (const auto& t : shape.entries) y[t.row] += Value(t, e) * x[t.col];
    return y;
  }

  std::vector<double> MatVecMid(const std::vector<double>& x) const {
    std::vector<double> y(shape.rows, 0.0);
    for (const auto& t : shape.entries) {
      y[t.row] += 0.5 * (t.value.lo + t.value.hi) * x[t.col];
    }
    return y;
  }

  std::vector<double> MatVecT(Endpoint e, const std::vector<double>& x) const {
    std::vector<double> y(shape.cols, 0.0);
    for (const auto& t : shape.entries) y[t.col] += Value(t, e) * x[t.row];
    return y;
  }

  Matrix MatDense(Endpoint e, const Matrix& b) const {
    Matrix c(shape.rows, b.cols());
    for (const auto& t : shape.entries) {
      for (size_t j = 0; j < b.cols(); ++j) {
        c(t.row, j) += Value(t, e) * b(t.col, j);
      }
    }
    return c;
  }
};

// Builds the matrix for one (shape, backend) pair. Duplicate policy is
// irrelevant: MakeShapes emits unique cells.
SparseIntervalMatrix Build(const Shape& s, spk::Backend backend) {
  SparseIntervalMatrix m =
      SparseIntervalMatrix::FromTriplets(s.rows, s.cols, s.entries);
  m.set_kernel(backend);
  return m;
}

// The backends every test runs under. kAvx2 silently degrades to scalar on
// machines without AVX2 — the differential claim still holds there, it just
// collapses to scalar-vs-scalar.
const spk::Backend kBackends[] = {spk::Backend::kScalar, spk::Backend::kAvx2,
                                  spk::Backend::kSell};

std::string CaseName(const Shape& s, spk::Backend b, bool non_negative) {
  return s.name + "/" + spk::BackendName(b) +
         (non_negative ? "/nonneg" : "/signed");
}

class SparseKernelDiffTest : public ::testing::TestWithParam<bool> {};

TEST_P(SparseKernelDiffTest, MultiplyMatchesReference) {
  const bool non_negative = GetParam();
  Rng rng(11);
  for (const Shape& s : MakeShapes(non_negative)) {
    const Reference ref{s};
    const std::vector<double> x = RandomVector(rng, s.cols);
    for (spk::Backend b : kBackends) {
      const SparseIntervalMatrix m = Build(s, b);
      std::vector<double> y;
      for (Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
        m.Multiply(e, x, y);
        ExpectVectorNear(y, ref.MatVec(e, x),
                         "Multiply/" + CaseName(s, b, non_negative));
      }
      m.MultiplyMid(x, y);
      ExpectVectorNear(y, ref.MatVecMid(x),
                       "MultiplyMid/" + CaseName(s, b, non_negative));
    }
  }
}

TEST_P(SparseKernelDiffTest, FusedEndpointKernelsMatchReference) {
  const bool non_negative = GetParam();
  Rng rng(12);
  for (const Shape& s : MakeShapes(non_negative)) {
    const Reference ref{s};
    const std::vector<double> x = RandomVector(rng, s.cols);
    const std::vector<double> x_hi = RandomVector(rng, s.cols);
    for (spk::Backend b : kBackends) {
      const SparseIntervalMatrix m = Build(s, b);
      std::vector<double> y_lo, y_hi;
      m.MultiplyBoth(x, y_lo, y_hi);
      ExpectVectorNear(y_lo, ref.MatVec(Endpoint::kLower, x),
                       "MultiplyBoth.lo/" + CaseName(s, b, non_negative));
      ExpectVectorNear(y_hi, ref.MatVec(Endpoint::kUpper, x),
                       "MultiplyBoth.hi/" + CaseName(s, b, non_negative));
      m.MultiplyPair(x, x_hi, y_lo, y_hi);
      ExpectVectorNear(y_lo, ref.MatVec(Endpoint::kLower, x),
                       "MultiplyPair.lo/" + CaseName(s, b, non_negative));
      ExpectVectorNear(y_hi, ref.MatVec(Endpoint::kUpper, x_hi),
                       "MultiplyPair.hi/" + CaseName(s, b, non_negative));
    }
  }
}

TEST_P(SparseKernelDiffTest, MultiplyTransposeMatchesReference) {
  const bool non_negative = GetParam();
  Rng rng(13);
  for (const Shape& s : MakeShapes(non_negative)) {
    const Reference ref{s};
    const std::vector<double> x = RandomVector(rng, s.rows);
    for (spk::Backend b : kBackends) {
      const SparseIntervalMatrix m = Build(s, b);
      std::vector<double> y;
      for (Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
        m.MultiplyTranspose(e, x, y);
        ExpectVectorNear(y, ref.MatVecT(e, x),
                         "MultiplyTranspose/" + CaseName(s, b, non_negative));
      }
    }
  }
}

TEST_P(SparseKernelDiffTest, MultiplyDenseMatchesReference) {
  const bool non_negative = GetParam();
  Rng rng(14);
  for (const Shape& s : MakeShapes(non_negative)) {
    const Reference ref{s};
    // Dense widths around the 4-wide register blocking, including 1.
    for (size_t bcols : {size_t{1}, size_t{3}, size_t{8}}) {
      const Matrix b_dense = RandomDense(rng, s.cols, bcols);
      for (spk::Backend b : kBackends) {
        const SparseIntervalMatrix m = Build(s, b);
        for (Endpoint e : {Endpoint::kLower, Endpoint::kUpper}) {
          ExpectMatrixNear(m.MultiplyDense(e, b_dense), ref.MatDense(e, b_dense),
                           "MultiplyDense/" + CaseName(s, b, non_negative));
        }
        const IntervalMatrix prod = m.IntervalMultiplyDense(b_dense);
        // The interval product is the elementwise min/max of the two
        // endpoint products (b_dense is scalar, so those are the only
        // candidates).
        const Matrix p_lo = ref.MatDense(Endpoint::kLower, b_dense);
        const Matrix p_hi = ref.MatDense(Endpoint::kUpper, b_dense);
        Matrix want_lo(s.rows, bcols), want_hi(s.rows, bcols);
        for (size_t i = 0; i < s.rows; ++i) {
          for (size_t j = 0; j < bcols; ++j) {
            want_lo(i, j) = std::min(p_lo(i, j), p_hi(i, j));
            want_hi(i, j) = std::max(p_lo(i, j), p_hi(i, j));
          }
        }
        ExpectMatrixNear(prod.lower(), want_lo,
                         "IntervalMultiplyDense.lo/" +
                             CaseName(s, b, non_negative));
        ExpectMatrixNear(prod.upper(), want_hi,
                         "IntervalMultiplyDense.hi/" +
                             CaseName(s, b, non_negative));
      }
    }
  }
}

TEST_P(SparseKernelDiffTest, GramOperatorMatchesComposition) {
  const bool non_negative = GetParam();
  Rng rng(15);
  for (const Shape& s : MakeShapes(non_negative)) {
    const Reference ref{s};
    const std::vector<double> x = RandomVector(rng, s.cols);
    for (spk::Backend b : kBackends) {
      const SparseIntervalMatrix m = Build(s, b);
      const SparseIntervalMatrix mt = m.Transpose();
      EXPECT_EQ(mt.kernel(), b) << "Transpose must propagate the backend";
      const SparseGramOperator lower(m, mt, Endpoint::kLower);
      const SparseGramOperator upper(m, mt, Endpoint::kUpper);
      std::vector<double> y, y_lo, y_hi;
      lower.Apply(x, y);
      const std::vector<double> want_lo =
          ref.MatVecT(Endpoint::kLower, ref.MatVec(Endpoint::kLower, x));
      ExpectVectorNear(y, want_lo, "Gram.lo/" + CaseName(s, b, non_negative));
      upper.Apply(x, y);
      const std::vector<double> want_hi =
          ref.MatVecT(Endpoint::kUpper, ref.MatVec(Endpoint::kUpper, x));
      ExpectVectorNear(y, want_hi, "Gram.hi/" + CaseName(s, b, non_negative));
      lower.ApplyBoth(x, y_lo, y_hi);
      ExpectVectorNear(y_lo, want_lo,
                       "Gram.ApplyBoth.lo/" + CaseName(s, b, non_negative));
      ExpectVectorNear(y_hi, want_hi,
                       "Gram.ApplyBoth.hi/" + CaseName(s, b, non_negative));
    }
  }
}

TEST_P(SparseKernelDiffTest, FusedGramMatchesReference) {
  // The one-pass fused Gram kernels, called directly on the matrix (the
  // operator only routes through them on the AVX2 backend — this pins every
  // backend's fused path against the naive composition).
  const bool non_negative = GetParam();
  Rng rng(16);
  for (const Shape& s : MakeShapes(non_negative)) {
    const Reference ref{s};
    const std::vector<double> x = RandomVector(rng, s.cols);
    const std::vector<double> want_lo =
        ref.MatVecT(Endpoint::kLower, ref.MatVec(Endpoint::kLower, x));
    const std::vector<double> want_hi =
        ref.MatVecT(Endpoint::kUpper, ref.MatVec(Endpoint::kUpper, x));
    for (spk::Backend b : kBackends) {
      const SparseIntervalMatrix m = Build(s, b);
      std::vector<double> y, y_lo, y_hi;
      m.GramMultiply(Endpoint::kLower, x, y);
      ExpectVectorNear(y, want_lo,
                       "GramMultiply.lo/" + CaseName(s, b, non_negative));
      m.GramMultiply(Endpoint::kUpper, x, y);
      ExpectVectorNear(y, want_hi,
                       "GramMultiply.hi/" + CaseName(s, b, non_negative));
      m.GramMultiplyBoth(x, y_lo, y_hi);
      ExpectVectorNear(y_lo, want_lo,
                       "GramMultiplyBoth.lo/" + CaseName(s, b, non_negative));
      ExpectVectorNear(y_hi, want_hi,
                       "GramMultiplyBoth.hi/" + CaseName(s, b, non_negative));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Regimes, SparseKernelDiffTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "NonNegative" : "Signed";
                         });

// --- Contract checks ------------------------------------------------------

TEST(SparseKernelContractTest, MultiplyDenseZeroColumns) {
  // A zero-column operand must yield a rows x 0 result, not walk null data.
  const SparseIntervalMatrix m = SparseIntervalMatrix::FromTriplets(
      3, 4, {{0, 1, Interval(1.0, 2.0)}, {2, 3, Interval(-1.0, 1.0)}});
  const Matrix b(4, 0);
  for (spk::Backend backend : kBackends) {
    SparseIntervalMatrix mm = m;
    mm.set_kernel(backend);
    const Matrix c = mm.MultiplyDense(Endpoint::kLower, b);
    EXPECT_EQ(c.rows(), 3u);
    EXPECT_EQ(c.cols(), 0u);
    const IntervalMatrix ci = mm.IntervalMultiplyDense(b);
    EXPECT_EQ(ci.rows(), 3u);
    EXPECT_EQ(ci.cols(), 0u);
  }
}

TEST(SparseKernelContractTest, BackendParsingAndResolution) {
  spk::Backend b;
  EXPECT_TRUE(spk::ParseBackend("scalar", &b));
  EXPECT_EQ(b, spk::Backend::kScalar);
  EXPECT_TRUE(spk::ParseBackend("avx2", &b));
  EXPECT_EQ(b, spk::Backend::kAvx2);
  EXPECT_TRUE(spk::ParseBackend("sell", &b));
  EXPECT_EQ(b, spk::Backend::kSell);
  EXPECT_TRUE(spk::ParseBackend("auto", &b));
  EXPECT_EQ(b, spk::Backend::kAuto);
  EXPECT_FALSE(spk::ParseBackend("mmx", &b));

  // Explicit scalar always resolves to scalar; avx2 degrades to scalar
  // when the CPU (or the build) lacks the ISA.
  EXPECT_EQ(spk::Resolve(spk::Backend::kScalar), spk::Backend::kScalar);
  const spk::Backend avx2 = spk::Resolve(spk::Backend::kAvx2);
  if (spk::Avx2Supported()) {
    EXPECT_EQ(avx2, spk::Backend::kAvx2);
  } else {
    EXPECT_EQ(avx2, spk::Backend::kScalar);
  }
  EXPECT_EQ(spk::Resolve(spk::Backend::kSell), spk::Backend::kSell);
  // SELL covers only the forward matvec family; the others fall back to a
  // CSR variant.
  const spk::Backend csr = spk::CsrVariant(spk::Backend::kSell);
  EXPECT_NE(csr, spk::Backend::kSell);
}

// Death tests document the no-aliasing contract. GTest death tests fork,
// which ThreadSanitizer instrumentation does not support — skip them there.
#if defined(__SANITIZE_THREAD__)
#define IVMF_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IVMF_TSAN_BUILD 1
#endif
#endif

#ifndef IVMF_TSAN_BUILD
TEST(SparseKernelDeathTest, MultiplyRejectsAliasedOutput) {
  const SparseIntervalMatrix m = SparseIntervalMatrix::FromTriplets(
      2, 2, {{0, 0, Interval(1.0, 2.0)}, {1, 1, Interval(3.0, 4.0)}});
  std::vector<double> x = {1.0, 2.0};
  EXPECT_DEATH(m.Multiply(Endpoint::kLower, x, x), "alias");
  EXPECT_DEATH(m.MultiplyMid(x, x), "alias");
  EXPECT_DEATH(m.MultiplyTranspose(Endpoint::kLower, x, x), "alias");
  std::vector<double> other = {0.0, 0.0};
  EXPECT_DEATH(m.MultiplyBoth(x, x, other), "alias");
  EXPECT_DEATH(m.MultiplyBoth(x, other, other), "distinct");
  EXPECT_DEATH(m.MultiplyPair(x, other, x, other), "alias");
}
#endif

}  // namespace
}  // namespace ivmf
