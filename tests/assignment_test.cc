#include "align/assignment.h"

#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

// Brute-force optimal assignment over all permutations (test oracle).
double BruteForceBest(const Matrix& weight) {
  const size_t n = weight.rows();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = -1e300;
  do {
    double total = 0.0;
    for (size_t j = 0; j < n; ++j) total += weight(perm[j], j);
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

bool IsPermutation(const std::vector<size_t>& match) {
  std::set<size_t> seen(match.begin(), match.end());
  return seen.size() == match.size() &&
         (match.empty() || *seen.rbegin() == match.size() - 1);
}

Matrix RandomWeight(size_t n, Rng& rng) {
  Matrix w(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) w(i, j) = rng.Uniform();
  return w;
}

TEST(HungarianTest, IdentityWeightPicksDiagonal) {
  const Matrix w = Matrix::Identity(4);
  const std::vector<size_t> match = SolveAssignmentMax(w);
  for (size_t j = 0; j < 4; ++j) EXPECT_EQ(match[j], j);
}

TEST(HungarianTest, AntiDiagonalWeight) {
  Matrix w(3, 3);
  w(2, 0) = 1;
  w(1, 1) = 1;
  w(0, 2) = 1;
  const std::vector<size_t> match = SolveAssignmentMax(w);
  EXPECT_EQ(match[0], 2u);
  EXPECT_EQ(match[1], 1u);
  EXPECT_EQ(match[2], 0u);
}

TEST(HungarianTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 2 + trial % 6;  // up to 7: brute force stays cheap
    const Matrix w = RandomWeight(n, rng);
    const std::vector<size_t> match = SolveAssignmentMax(w);
    EXPECT_TRUE(IsPermutation(match));
    EXPECT_NEAR(AssignmentWeight(w, match), BruteForceBest(w), 1e-9);
  }
}

TEST(HungarianTest, MinimizationMatchesNegatedMaximization) {
  Rng rng(2);
  const Matrix w = RandomWeight(5, rng);
  Matrix neg(5, 5);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 5; ++j) neg(i, j) = -w(i, j);
  const double min_cost = AssignmentWeight(neg, SolveAssignmentMin(neg));
  const double max_weight = AssignmentWeight(w, SolveAssignmentMax(w));
  EXPECT_NEAR(min_cost, -max_weight, 1e-9);
}

TEST(HungarianTest, LargeInstanceIsPermutation) {
  Rng rng(3);
  const Matrix w = RandomWeight(64, rng);
  EXPECT_TRUE(IsPermutation(SolveAssignmentMax(w)));
}

TEST(HungarianTest, SingleElement) {
  const std::vector<size_t> match = SolveAssignmentMax(Matrix::FromRows({{0.3}}));
  ASSERT_EQ(match.size(), 1u);
  EXPECT_EQ(match[0], 0u);
}

TEST(HungarianTest, EmptyMatrix) {
  EXPECT_TRUE(SolveAssignmentMax(Matrix()).empty());
}

TEST(GreedyTest, ReturnsPermutation) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix w = RandomWeight(3 + trial % 8, rng);
    EXPECT_TRUE(IsPermutation(SolveAssignmentGreedy(w)));
  }
}

TEST(GreedyTest, OptimalWhenUnambiguous) {
  // Strongly diagonal-dominant weights: greedy finds the optimum.
  Matrix w(4, 4);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 4; ++j) w(i, j) = (i == j) ? 10.0 : 0.1 * (i + j);
  const std::vector<size_t> match = SolveAssignmentGreedy(w);
  for (size_t j = 0; j < 4; ++j) EXPECT_EQ(match[j], j);
}

TEST(GreedyTest, NeverBeatsHungarian) {
  Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    const Matrix w = RandomWeight(4 + trial % 5, rng);
    const double greedy = AssignmentWeight(w, SolveAssignmentGreedy(w));
    const double optimal = AssignmentWeight(w, SolveAssignmentMax(w));
    EXPECT_LE(greedy, optimal + 1e-9);
  }
}

TEST(StableMarriageTest, ReturnsPermutation) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const Matrix w = RandomWeight(3 + trial % 8, rng);
    EXPECT_TRUE(IsPermutation(SolveStableMarriage(w)));
  }
}

TEST(StableMarriageTest, ResultIsStable) {
  // No blocking pair: (i, j) such that both prefer each other over their
  // assignments.
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    const size_t n = 4 + trial % 4;
    const Matrix w = RandomWeight(n, rng);
    const std::vector<size_t> match = SolveStableMarriage(w);
    std::vector<size_t> row_of_col = match;           // col -> row
    std::vector<size_t> col_of_row(n);
    for (size_t j = 0; j < n; ++j) col_of_row[match[j]] = j;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        const bool row_prefers = w(i, j) > w(i, col_of_row[i]);
        const bool col_prefers = w(i, j) > w(row_of_col[j], j);
        EXPECT_FALSE(row_prefers && col_prefers)
            << "blocking pair (" << i << "," << j << ")";
      }
    }
  }
}

TEST(StableMarriageTest, IdentityPreference) {
  const std::vector<size_t> match = SolveStableMarriage(Matrix::Identity(5));
  for (size_t j = 0; j < 5; ++j) EXPECT_EQ(match[j], j);
}

TEST(AssignmentWeightTest, SumsSelectedEntries) {
  const Matrix w = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(AssignmentWeight(w, {0, 1}), 5.0);
  EXPECT_DOUBLE_EQ(AssignmentWeight(w, {1, 0}), 5.0);
}

}  // namespace
}  // namespace ivmf
