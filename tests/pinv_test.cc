#include "linalg/pinv.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "linalg/svd.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomMatrix;

TEST(PinvTest, SquareInvertibleMatchesInverse) {
  Rng rng(1);
  const Matrix a = RandomMatrix(5, 5, rng);
  const Matrix pinv = PseudoInverse(a);
  EXPECT_TRUE((a * pinv).ApproxEquals(Matrix::Identity(5), 1e-8));
}

TEST(PinvTest, TallMatrixLeftInverse) {
  Rng rng(2);
  const Matrix a = RandomMatrix(9, 4, rng);
  const Matrix pinv = PseudoInverse(a);
  EXPECT_EQ(pinv.rows(), 4u);
  EXPECT_EQ(pinv.cols(), 9u);
  // A⁺A = I for full column rank.
  EXPECT_TRUE((pinv * a).ApproxEquals(Matrix::Identity(4), 1e-8));
}

TEST(PinvTest, WideMatrixRightInverse) {
  Rng rng(3);
  const Matrix a = RandomMatrix(4, 9, rng);
  const Matrix pinv = PseudoInverse(a);
  EXPECT_TRUE((a * pinv).ApproxEquals(Matrix::Identity(4), 1e-8));
}

TEST(PinvTest, MoorePenroseConditions) {
  Rng rng(4);
  const Matrix a = RandomMatrix(6, 4, rng);
  const Matrix p = PseudoInverse(a);
  // 1) A A⁺ A = A,  2) A⁺ A A⁺ = A⁺, 3) (A A⁺)ᵀ = A A⁺, 4) (A⁺A)ᵀ = A⁺A.
  EXPECT_TRUE((a * p * a).ApproxEquals(a, 1e-8));
  EXPECT_TRUE((p * a * p).ApproxEquals(p, 1e-8));
  EXPECT_TRUE((a * p).ApproxEquals((a * p).Transpose(), 1e-8));
  EXPECT_TRUE((p * a).ApproxEquals((p * a).Transpose(), 1e-8));
}

TEST(PinvTest, RankDeficientSatisfiesMoorePenrose) {
  // Rank-1 outer product.
  Matrix a(5, 3);
  for (size_t i = 0; i < 5; ++i)
    for (size_t j = 0; j < 3; ++j) a(i, j) = (i + 1.0) * (j + 1.0);
  const Matrix p = PseudoInverse(a);
  EXPECT_TRUE((a * p * a).ApproxEquals(a, 1e-8));
  EXPECT_TRUE((p * a * p).ApproxEquals(p, 1e-8));
}

TEST(PinvTest, CutoffDropsSmallSingularValues) {
  // Diagonal with one small singular value.
  const Matrix a = Matrix::Diagonal({2.0, 0.05});
  PinvOptions options;
  options.singular_value_cutoff = 0.1;  // per the paper's ISVD policy
  const Matrix p = PseudoInverse(a, options);
  EXPECT_NEAR(p(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(p(1, 1), 0.0, 1e-12);  // dropped, not inverted to 20
}

TEST(PinvTest, ZeroMatrixPinvIsZero) {
  const Matrix p = PseudoInverse(Matrix(3, 4));
  EXPECT_DOUBLE_EQ(p.MaxAbs(), 0.0);
  EXPECT_EQ(p.rows(), 4u);
  EXPECT_EQ(p.cols(), 3u);
}

TEST(ConditionNumberTest, IdentityHasConditionOne) {
  EXPECT_NEAR(ConditionNumber(Matrix::Identity(6)), 1.0, 1e-9);
}

TEST(ConditionNumberTest, DiagonalRatio) {
  EXPECT_NEAR(ConditionNumber(Matrix::Diagonal({10, 2})), 5.0, 1e-9);
}

TEST(ConditionNumberTest, SingularIsInfinite) {
  EXPECT_TRUE(std::isinf(ConditionNumber(Matrix(3, 3))));
}

TEST(RobustInverseTest, WellConditionedUsesExactInverse) {
  Rng rng(5);
  const Matrix a = RandomMatrix(5, 5, rng) + 5.0 * Matrix::Identity(5);
  const Matrix inv = RobustInverse(a);
  EXPECT_TRUE((a * inv).ApproxEquals(Matrix::Identity(5), 1e-9));
}

TEST(RobustInverseTest, NonSquareFallsBackToPinv) {
  Rng rng(6);
  const Matrix a = RandomMatrix(6, 3, rng) * 10.0;  // σ well above 0.1
  const Matrix inv = RobustInverse(a);
  EXPECT_EQ(inv.rows(), 3u);
  EXPECT_EQ(inv.cols(), 6u);
  EXPECT_TRUE((inv * a).ApproxEquals(Matrix::Identity(3), 1e-8));
}

TEST(RobustInverseTest, IllConditionedUsesCutoffPinv) {
  // cond = 1e10 forces the pseudo-inverse path; σ=1e-9 < 0.1 is dropped.
  const Matrix a = Matrix::Diagonal({10.0, 1e-9});
  const Matrix inv = RobustInverse(a, /*cond_threshold=*/1e6);
  EXPECT_NEAR(inv(0, 0), 0.1, 1e-12);
  EXPECT_NEAR(inv(1, 1), 0.0, 1e-12);
}

}  // namespace
}  // namespace ivmf
