// The shared worker pool behind ParallelFor and the shard-parallel kernels:
// correctness of the region protocol (every index runs exactly once),
// nested submission (help-while-wait must drain inner regions without
// deadlock — the sharded Gram apply opens kernel regions from inside the
// two-endpoint eigensolve's outer region), concurrent submitters from
// independent threads, and the serial 0-worker fallback.

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel.h"
#include "base/thread_pool.h"

namespace ivmf {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  struct Ctx {
    std::vector<std::atomic<int>>* hits;
  } ctx{&hits};
  pool.Run(kN, [](void* c, size_t i) {
    (*static_cast<Ctx*>(c)->hits)[i].fetch_add(1, std::memory_order_relaxed);
  }, &ctx);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  size_t sum = 0;
  struct Ctx {
    size_t* sum;
  } ctx{&sum};
  // With no workers every index runs on the submitting thread, in order —
  // the unsynchronized sum is safe exactly because of that.
  pool.Run(100, [](void* c, size_t i) { *static_cast<Ctx*>(c)->sum += i; },
           &ctx);
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, EmptyRegionReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  struct Ctx {
    bool* ran;
  } ctx{&ran};
  pool.Run(0, [](void* c, size_t) { *static_cast<Ctx*>(c)->ran = true; },
           &ctx);
  EXPECT_FALSE(ran);
}

// A task that itself opens a region on the same pool must complete: the
// submitter helps with queued work while waiting, so the inner region makes
// progress even when every worker is blocked inside outer tasks.
TEST(ThreadPoolTest, NestedRunDoesNotDeadlock) {
  ThreadPool pool(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::atomic<size_t> total{0};
  struct Ctx {
    ThreadPool* pool;
    std::atomic<size_t>* total;
  } ctx{&pool, &total};
  pool.Run(kOuter, [](void* c, size_t) {
    auto* outer = static_cast<Ctx*>(c);
    outer->pool->Run(kInner, [](void* c2, size_t) {
      static_cast<Ctx*>(c2)->total->fetch_add(1, std::memory_order_relaxed);
    }, outer);
  }, &ctx);
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, ConcurrentSubmittersAllComplete) {
  ThreadPool pool(3);
  constexpr size_t kSubmitters = 6;
  constexpr size_t kN = 500;
  std::vector<std::atomic<size_t>> counts(kSubmitters);
  std::vector<std::thread> submitters;
  for (size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &counts, s] {
      struct Ctx {
        std::atomic<size_t>* count;
      } ctx{&counts[s]};
      for (int round = 0; round < 5; ++round) {
        pool.Run(kN, [](void* c, size_t) {
          static_cast<Ctx*>(c)->count->fetch_add(1,
                                                 std::memory_order_relaxed);
        }, &ctx);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (size_t s = 0; s < kSubmitters; ++s) {
    EXPECT_EQ(counts[s].load(), 5 * kN) << "submitter " << s;
  }
}

TEST(ThreadPoolTest, SharedPoolCapsExecutorsAtHardwareConcurrency) {
  const size_t hw = std::thread::hardware_concurrency();
  // workers + the submitting thread == executor count.
  EXPECT_LE(ThreadPool::Shared().workers() + 1, hw == 0 ? 1 : hw);
}

// ParallelFor rides the shared pool; nested use inside a parallel body is
// the pattern the sharded Lanczos drivers rely on (two-endpoint region
// wrapping kernel regions).
TEST(ThreadPoolTest, NestedParallelForCompletes) {
  std::atomic<size_t> total{0};
  ParallelFor(0, 2, [&](size_t) {
    ParallelFor(0, 1000, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 2000u);
}

}  // namespace
}  // namespace ivmf
