#include "base/parallel.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(1000);
  ParallelFor(0, 1000, [&](size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](size_t) { called = true; });
  ParallelFor(7, 3, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, RespectsOffsetRange) {
  std::vector<int> hit(20, 0);
  ParallelFor(5, 15, [&](size_t i) { hit[i] = 1; });
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(hit[i], (i >= 5 && i < 15) ? 1 : 0);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(0, 10, [&](size_t i) { order.push_back(static_cast<int>(i)); },
              /*max_threads=*/1);
  // Serial execution preserves order.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, MinItemsPerThreadLimitsSplit) {
  // 10 items with min 100 per thread -> serial path (order preserved).
  std::vector<int> order;
  ParallelFor(0, 10, [&](size_t i) { order.push_back(static_cast<int>(i)); },
              /*max_threads=*/0, /*min_items_per_thread=*/100);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, SumMatchesSerial) {
  std::vector<double> data(5000);
  Rng rng(1);
  for (double& v : data) v = rng.Uniform();
  std::vector<double> out(5000);
  ParallelFor(0, 5000, [&](size_t i) { out[i] = data[i] * 2.0; });
  for (size_t i = 0; i < 5000; ++i) EXPECT_DOUBLE_EQ(out[i], data[i] * 2.0);
}

TEST(SuggestedThreadsTest, NeverExceedsItems) {
  EXPECT_EQ(SuggestedThreads(1), 1u);
  EXPECT_LE(SuggestedThreads(3), 3u);
  EXPECT_EQ(SuggestedThreads(0), 1u);
}

TEST(SuggestedThreadsTest, HonorsMaxThreads) {
  EXPECT_LE(SuggestedThreads(1000, 4), 4u);
}

TEST(SuggestedThreadsTest, UnknownHardwareTrustsExplicitMaxThreads) {
  // hardware_concurrency() may legitimately return 0 (unknown). An explicit
  // max_threads must survive that — the old code clamped it to the hw
  // fallback of 1 and silently serialized the caller.
  EXPECT_EQ(SuggestedThreadsWithHardware(1000, 8, /*hw=*/0), 8u);
  EXPECT_EQ(SuggestedThreadsWithHardware(5, 8, /*hw=*/0), 5u);
}

TEST(SuggestedThreadsTest, UnknownHardwareWithoutPreferenceStaysSerial) {
  EXPECT_EQ(SuggestedThreadsWithHardware(1000, 0, /*hw=*/0), 1u);
}

TEST(SuggestedThreadsTest, KnownHardwareStillCapsExplicitMaxThreads) {
  EXPECT_EQ(SuggestedThreadsWithHardware(1000, 8, /*hw=*/4), 4u);
  EXPECT_EQ(SuggestedThreadsWithHardware(1000, 2, /*hw=*/4), 2u);
  EXPECT_EQ(SuggestedThreadsWithHardware(3, 8, /*hw=*/4), 3u);
}

TEST(SuggestedThreadsTest, ZeroItemsAlwaysOneThread) {
  EXPECT_EQ(SuggestedThreadsWithHardware(0, 8, /*hw=*/0), 1u);
  EXPECT_EQ(SuggestedThreadsWithHardware(0, 0, /*hw=*/16), 1u);
}

TEST(ParallelMatmulTest, LargeProductMatchesSerialSemantics) {
  // The parallel threshold kicks in above ~4M flops: 200x200x200 = 8M.
  Rng rng(2);
  const Matrix a = ivmf::testing::RandomMatrix(200, 200, rng);
  const Matrix b = ivmf::testing::RandomMatrix(200, 200, rng);
  const Matrix big = a * b;  // parallel path
  // Verify a random sample of entries against the definition.
  for (int trial = 0; trial < 50; ++trial) {
    const size_t i = rng.UniformIndex(200);
    const size_t j = rng.UniformIndex(200);
    double expected = 0.0;
    for (size_t k = 0; k < 200; ++k) expected += a(i, k) * b(k, j);
    EXPECT_NEAR(big(i, j), expected, 1e-9);
  }
}

TEST(ParallelMatmulTest, DeterministicAcrossRuns) {
  Rng rng(3);
  const Matrix a = ivmf::testing::RandomMatrix(180, 220, rng);
  const Matrix b = ivmf::testing::RandomMatrix(220, 190, rng);
  const Matrix p1 = a * b;
  const Matrix p2 = a * b;
  EXPECT_TRUE(p1 == p2);  // bit-identical: no cross-thread accumulation
}

}  // namespace
}  // namespace ivmf
