#include "interval/interval_ops.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

TEST(AverageReplaceVectorTest, RepairsOnlyMisorderedEntries) {
  std::vector<Interval> v{Interval(1, 2), Interval(5, 3), Interval(-1, -1)};
  AverageReplaceVector(v);
  EXPECT_EQ(v[0], Interval(1, 2));
  EXPECT_EQ(v[1], Interval(4, 4));
  EXPECT_EQ(v[2], Interval(-1, -1));
}

TEST(InverseIntervalDiagonalTest, OptimalScalarInverse) {
  // Section 4.4.2.1: σ = 2 / (s_* + s^*).
  const std::vector<Interval> diag{Interval(1, 3), Interval(2, 2)};
  const std::vector<double> inv = InverseIntervalDiagonal(diag);
  EXPECT_DOUBLE_EQ(inv[0], 0.5);   // 2 / (1+3)
  EXPECT_DOUBLE_EQ(inv[1], 0.5);   // scalar 2 inverts to 1/2
}

TEST(InverseIntervalDiagonalTest, HandlesZeroCases) {
  const std::vector<Interval> diag{Interval(0, 0), Interval(0, 4),
                                   Interval(4, 0)};
  const std::vector<double> inv = InverseIntervalDiagonal(diag);
  EXPECT_DOUBLE_EQ(inv[0], 0.0);
  EXPECT_DOUBLE_EQ(inv[1], 0.5);  // 2 / 4 for the half-zero interval
  EXPECT_DOUBLE_EQ(inv[2], 0.5);
}

TEST(InverseIntervalDiagonalTest, MatrixOverloadBuildsDiagonal) {
  IntervalMatrix sigma(2, 2);
  sigma.Set(0, 0, Interval(1, 3));
  sigma.Set(1, 1, Interval(4, 4));
  const Matrix inv = InverseIntervalDiagonal(sigma);
  EXPECT_DOUBLE_EQ(inv(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(inv(1, 1), 0.25);
  EXPECT_DOUBLE_EQ(inv(0, 1), 0.0);
}

TEST(InverseIntervalDiagonalTest, OptimalityOfEpsilon) {
  // The minimal achievable ε_i is (s^*-s_*)/(s^*+s_*); check that the
  // scalar inverse achieves exactly it: s_*σ = 1-ε and s^*σ = 1+ε.
  const Interval s(2.0, 6.0);
  const double sigma = InverseIntervalDiagonal({s})[0];
  const double eps = IntervalDiagonalEpsilons({s})[0];
  EXPECT_NEAR(s.lo * sigma, 1.0 - eps, 1e-12);
  EXPECT_NEAR(s.hi * sigma, 1.0 + eps, 1e-12);
  EXPECT_NEAR(eps, (6.0 - 2.0) / (6.0 + 2.0), 1e-12);
}

TEST(InverseIntervalDiagonalTest, EpsilonIsZeroForScalars) {
  EXPECT_DOUBLE_EQ(IntervalDiagonalEpsilons({Interval::Scalar(5.0)})[0], 0.0);
}

TEST(InverseIntervalDiagonalTest, ScalarDiagonalGivesExactIdentity) {
  IntervalMatrix sigma(3, 3);
  sigma.Set(0, 0, Interval::Scalar(2.0));
  sigma.Set(1, 1, Interval::Scalar(5.0));
  sigma.Set(2, 2, Interval::Scalar(0.5));
  const Matrix inv = InverseIntervalDiagonal(sigma);
  const Matrix prod = sigma.Mid() * inv;
  EXPECT_TRUE(prod.ApproxEquals(Matrix::Identity(3), 1e-12));
}

TEST(NormalizeColumnsL2Test, ColumnsBecomeUnitLength) {
  Matrix m = Matrix::FromRows({{3, 0}, {4, 0}, {0, 2}});
  const std::vector<double> norms = NormalizeColumnsL2(m);
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 2.0);
  EXPECT_NEAR(Norm2(m.Col(0)), 1.0, 1e-12);
  EXPECT_NEAR(Norm2(m.Col(1)), 1.0, 1e-12);
}

TEST(NormalizeColumnsL2Test, ZeroColumnIsLeftUnchanged) {
  Matrix m(3, 2);
  m(0, 0) = 2.0;
  const std::vector<double> norms = NormalizeColumnsL2(m);
  EXPECT_DOUBLE_EQ(norms[1], 0.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

TEST(NormalizeColumnsL2Test, RenormalizationIsInvertible) {
  Rng rng(9);
  Matrix m = ivmf::testing::RandomMatrix(6, 4, rng);
  const Matrix original = m;
  const std::vector<double> norms = NormalizeColumnsL2(m);
  for (size_t j = 0; j < m.cols(); ++j)
    for (size_t i = 0; i < m.rows(); ++i) m(i, j) *= norms[j];
  EXPECT_TRUE(m.ApproxEquals(original, 1e-12));
}

}  // namespace
}  // namespace ivmf
