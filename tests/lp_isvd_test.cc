#include "core/lp_isvd.h"

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/accuracy.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomIntervalMatrix;

TEST(LpIsvdTest, ProducesWellFormedDecomposition) {
  Rng rng(1);
  const IntervalMatrix m = RandomIntervalMatrix(8, 6, rng, 0.2, 1.0, 0.1);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const IsvdResult result = LpIsvd(m, 3, options);
  EXPECT_EQ(result.rank(), 3u);
  EXPECT_EQ(result.u.rows(), 8u);
  EXPECT_EQ(result.v.rows(), 6u);
  EXPECT_TRUE(result.u.IsProper());
  EXPECT_TRUE(result.v.IsProper());
}

TEST(LpIsvdTest, AllTargetsSupported) {
  Rng rng(2);
  const IntervalMatrix m = RandomIntervalMatrix(7, 5, rng, 0.2, 1.0, 0.1);
  for (const DecompositionTarget target :
       {DecompositionTarget::kA, DecompositionTarget::kB,
        DecompositionTarget::kC}) {
    IsvdOptions options;
    options.target = target;
    const IsvdResult result = LpIsvd(m, 3, options);
    EXPECT_EQ(result.target, target);
    EXPECT_TRUE(result.u.IsProper());
  }
}

TEST(LpIsvdTest, NearScalarInputGivesReasonableAccuracy) {
  // With tiny interval radii the LP bounds stay tight and the LP
  // decomposition behaves like plain SVD.
  Rng rng(3);
  const IntervalMatrix m = RandomIntervalMatrix(8, 6, rng, 0.5, 1.0, 0.001);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const IsvdResult result = LpIsvd(m, 0, options);
  const AccuracyReport report = DecompositionAccuracy(m, result.Reconstruct());
  EXPECT_GT(report.harmonic_mean, 0.9);
}

TEST(LpIsvdTest, LargeIntervalsCollapseAccuracy) {
  // The paper's reported behaviour: on the default synthetic configuration
  // (sizable intervals) the LP class is ineffective while ISVD stays
  // usable. With interval-valued outputs (target a) the blown-up
  // eigenvector boxes drive the H-mean to ~0; with scalar factors
  // (targets b/c) endpoint averaging softens the damage but ISVD still
  // dominates clearly.
  Rng rng(4);
  SyntheticConfig config;
  config.rows = 10;
  config.cols = 14;
  config.interval_intensity = 1.0;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);

  IsvdOptions target_a;
  target_a.target = DecompositionTarget::kA;
  const double lp_a =
      DecompositionAccuracy(m, LpIsvd(m, 7, target_a).Reconstruct())
          .harmonic_mean;
  EXPECT_LT(lp_a, 0.05);  // the paper's "≈ 0.0 H-mean"

  IsvdOptions target_b;
  target_b.target = DecompositionTarget::kB;
  const double lp_b =
      DecompositionAccuracy(m, LpIsvd(m, 7, target_b).Reconstruct())
          .harmonic_mean;
  const double isvd_b =
      DecompositionAccuracy(m, Isvd4(m, 7, target_b).Reconstruct())
          .harmonic_mean;
  EXPECT_GT(isvd_b, lp_b + 0.1);
}

TEST(LpIsvdTest, TimingsRecordLpCost) {
  Rng rng(5);
  const IntervalMatrix m = RandomIntervalMatrix(8, 6, rng, 0.2, 1.0, 0.2);
  const IsvdResult result = LpIsvd(m, 3);
  EXPECT_GT(result.timings.decompose, 0.0);  // the LP solves live here
}

}  // namespace
}  // namespace ivmf
