// Exposition-format lint for MetricsSnapshot::ToPrometheusText, checking
// the rules a real Prometheus scraper enforces: metric names restricted to
// [a-z0-9_] with the ivmf_ prefix, counter sample names carrying the
// _total suffix, exactly one # TYPE line per metric family (and one
// preceding every sample), and label values escaped (backslash, quote,
// newline) inside the quotes.

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "obs/metrics.h"

namespace ivmf::obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Sample name: everything before the first '{' or ' '.
std::string SampleName(const std::string& line) {
  const size_t end = line.find_first_of("{ ");
  return line.substr(0, end);
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

TEST(PrometheusLintTest, FullExpositionPassesLint) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Names with every character class the sanitizer must handle, plus label
  // values holding the three characters that require escaping.
  registry.GetCounter("prom_lint.calls", {{"kernel", "multiply"}}).Add(3);
  registry.GetCounter("prom_lint.calls", {{"kernel", "fused"}}).Add(1);
  registry
      .GetCounter("prom_lint.weird", {{"path", "a\"b\\c\nd"}})
      .Add(7);
  registry.GetGauge("prom_lint.depth").Set(2.5);
  registry.GetHistogram("prom_lint.latency.seconds").Record(0.01);

  const std::string text =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  const std::vector<std::string> lines = Lines(text);
  ASSERT_FALSE(lines.empty());

  std::map<std::string, std::string> typed;  // family -> kind
  std::set<std::string> seen_samples;
  for (const std::string& line : lines) {
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream in(line);
      std::string hash, type_kw, family, kind;
      in >> hash >> type_kw >> family >> kind;
      // One # TYPE per family.
      EXPECT_EQ(typed.count(family), 0u) << "duplicate # TYPE for " << family;
      // # TYPE precedes the family's first sample.
      EXPECT_EQ(seen_samples.count(family), 0u)
          << "# TYPE after samples for " << family;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "summary")
          << line;
      typed[family] = kind;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unexpected comment line: " << line;

    const std::string name = SampleName(line);
    seen_samples.insert(name);
    // Name charset and prefix.
    EXPECT_EQ(name.rfind("ivmf_", 0), 0u) << name;
    for (const char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << "bad character '" << c << "' in " << name;
    }
    // Every sample belongs to a typed family (summaries expose base name
    // plus _sum / _count).
    std::string family = name;
    if (typed.count(family) == 0 && EndsWith(family, "_sum")) {
      family = family.substr(0, family.size() - 4);
    }
    if (typed.count(family) == 0 && EndsWith(family, "_count")) {
      family = family.substr(0, family.size() - 6);
    }
    ASSERT_EQ(typed.count(family), 1u) << "untyped sample " << name;
    if (typed[family] == "counter") {
      EXPECT_TRUE(EndsWith(name, "_total"))
          << "counter sample without _total: " << name;
    }
    // No raw newline can survive in a sample line by construction (we
    // split on '\n'); check the quotes balance so values stay parseable.
    size_t quotes = 0;
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) ++quotes;
    }
    EXPECT_EQ(quotes % 2, 0u) << "unbalanced quotes: " << line;
  }

  // The registered instruments surface with the expected names.
  EXPECT_NE(text.find("ivmf_prom_lint_calls_total{kernel=\"multiply\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ivmf_prom_lint_depth 2.5"), std::string::npos) << text;
  // The escaped label value: a"b\c<LF>d -> a\"b\\c\nd.
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos) << text;
}

TEST(PrometheusLintTest, CounterTypeHeaderMatchesSampleName) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("prom_lint.header.check").Add(1);
  const std::string text =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  // The classic text format types the full sample name (with _total).
  EXPECT_NE(
      text.find("# TYPE ivmf_prom_lint_header_check_total counter"),
      std::string::npos)
      << text;
}

TEST(PrometheusLintTest, CounterAlreadyEndingInTotalIsNotDoubled) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("prom_lint.requests.total").Add(2);
  const std::string text =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("ivmf_prom_lint_requests_total 2"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("ivmf_prom_lint_requests_total_total"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace ivmf::obs
