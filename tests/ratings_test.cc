#include "data/ratings.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ivmf {
namespace {

RatingsConfig SmallConfig() {
  RatingsConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.num_genres = 7;
  config.fill = 0.3;
  return config;
}

TEST(RatingsTest, DimensionsAndMaskConsistency) {
  const RatingsData data = GenerateRatings(SmallConfig());
  EXPECT_EQ(data.ratings.rows(), 60u);
  EXPECT_EQ(data.ratings.cols(), 80u);
  for (size_t i = 0; i < 60; ++i)
    for (size_t j = 0; j < 80; ++j) {
      if (data.mask(i, j) == 0.0) {
        EXPECT_DOUBLE_EQ(data.ratings(i, j), 0.0);
      } else {
        EXPECT_GE(data.ratings(i, j), 1.0);
        EXPECT_LE(data.ratings(i, j), 5.0);
      }
    }
}

TEST(RatingsTest, RatingsAreIntegers) {
  const RatingsData data = GenerateRatings(SmallConfig());
  for (size_t i = 0; i < data.ratings.rows(); ++i) {
    for (size_t j = 0; j < data.ratings.cols(); ++j) {
      if (data.mask(i, j) != 0.0) {
        EXPECT_DOUBLE_EQ(data.ratings(i, j),
                         std::round(data.ratings(i, j)));
      }
    }
  }
}

TEST(RatingsTest, FillFractionApproximatelyMatches) {
  const RatingsData data = GenerateRatings(SmallConfig());
  const double observed =
      data.mask.Sum() / static_cast<double>(data.mask.size());
  EXPECT_NEAR(observed, 0.3, 0.05);
}

TEST(RatingsTest, GenresAssignedToAllItems) {
  const RatingsData data = GenerateRatings(SmallConfig());
  for (int g : data.item_genre) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, 7);
  }
}

TEST(RatingsTest, DeterministicForSeed) {
  const RatingsData a = GenerateRatings(SmallConfig());
  const RatingsData b = GenerateRatings(SmallConfig());
  EXPECT_TRUE(a.ratings == b.ratings);
  EXPECT_EQ(a.item_genre, b.item_genre);
}

TEST(UserGenreIntervalTest, IntervalsSpanObservedRatings) {
  const RatingsData data = GenerateRatings(SmallConfig());
  const IntervalMatrix ug = UserGenreIntervalMatrix(data);
  EXPECT_EQ(ug.rows(), 60u);
  EXPECT_EQ(ug.cols(), 7u);
  EXPECT_TRUE(ug.IsProper());
  // Recompute one user's genre range by hand.
  for (size_t g = 0; g < 7; ++g) {
    double lo = 1e9, hi = -1e9;
    bool any = false;
    for (size_t j = 0; j < data.ratings.cols(); ++j) {
      if (data.item_genre[j] != static_cast<int>(g)) continue;
      if (data.mask(0, j) == 0.0) continue;
      lo = std::min(lo, data.ratings(0, j));
      hi = std::max(hi, data.ratings(0, j));
      any = true;
    }
    if (any) {
      EXPECT_DOUBLE_EQ(ug.At(0, g).lo, lo);
      EXPECT_DOUBLE_EQ(ug.At(0, g).hi, hi);
    } else {
      EXPECT_EQ(ug.At(0, g), Interval(0, 0));
    }
  }
}

TEST(CfIntervalTest, IntervalsCenterOnRatings) {
  const RatingsData data = GenerateRatings(SmallConfig());
  const IntervalMatrix cf = CfIntervalMatrix(data, 0.5);
  for (size_t i = 0; i < data.ratings.rows(); ++i)
    for (size_t j = 0; j < data.ratings.cols(); ++j) {
      if (data.mask(i, j) == 0.0) {
        EXPECT_EQ(cf.At(i, j), Interval(0, 0));
      } else {
        EXPECT_NEAR(cf.At(i, j).Mid(), data.ratings(i, j), 1e-9);
      }
    }
}

TEST(CfIntervalTest, AlphaScalesDelta) {
  const RatingsData data = GenerateRatings(SmallConfig());
  const IntervalMatrix a1 = CfIntervalMatrix(data, 0.5);
  const IntervalMatrix a2 = CfIntervalMatrix(data, 1.0);
  EXPECT_LT((a2.Span() - a1.Span() * 2.0).MaxAbs(), 1e-9);
}

TEST(SplitRatingsTest, PartitionsObservedEntries) {
  const RatingsData data = GenerateRatings(SmallConfig());
  Rng rng(42);
  const CfSplit split = SplitRatings(data, 0.25, rng);
  for (size_t i = 0; i < data.mask.rows(); ++i)
    for (size_t j = 0; j < data.mask.cols(); ++j) {
      const double total =
          split.train_mask(i, j) + split.test_mask(i, j);
      if (data.mask(i, j) == 0.0) {
        EXPECT_DOUBLE_EQ(total, 0.0);
      } else {
        EXPECT_DOUBLE_EQ(total, 1.0);  // exactly one of train/test
      }
    }
  const double test_share = split.test_mask.Sum() / data.mask.Sum();
  EXPECT_NEAR(test_share, 0.25, 0.05);
}

TEST(MaskedRmseTest, KnownValue) {
  const Matrix truth = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix pred = Matrix::FromRows({{2, 2}, {3, 2}});
  Matrix mask(2, 2, 1.0);
  // Errors: 1, 0, 0, 2 -> RMSE = sqrt(5/4).
  EXPECT_NEAR(MaskedRmse(truth, pred, mask), std::sqrt(1.25), 1e-12);
  // Masking the second row out changes the error set to {1, 0}.
  mask(1, 0) = 0.0;
  mask(1, 1) = 0.0;
  EXPECT_NEAR(MaskedRmse(truth, pred, mask), std::sqrt(0.5), 1e-12);
}

TEST(MaskedRmseTest, EmptyMaskGivesZero) {
  EXPECT_DOUBLE_EQ(
      MaskedRmse(Matrix(2, 2), Matrix(2, 2, 5.0), Matrix(2, 2)), 0.0);
}

TEST(CategoryRangeTest, DimensionsAndScale) {
  CategoryRangeConfig config;
  config.num_users = 50;
  config.num_categories = 10;
  const IntervalMatrix m = GenerateCategoryRangeMatrix(config);
  EXPECT_EQ(m.rows(), 50u);
  EXPECT_EQ(m.cols(), 10u);
  EXPECT_TRUE(m.IsProper());
  for (size_t i = 0; i < 50; ++i)
    for (size_t j = 0; j < 10; ++j) {
      const Interval cell = m.At(i, j);
      if (cell.lo == 0.0 && cell.hi == 0.0) continue;  // empty
      EXPECT_GE(cell.lo, 1.0);
      EXPECT_LE(cell.hi, 5.0);
    }
}

TEST(CategoryRangeTest, DensityApproximatelyMatches) {
  CategoryRangeConfig config;
  config.num_users = 200;
  config.num_categories = 28;
  config.matrix_density = 0.27;
  const IntervalMatrix m = GenerateCategoryRangeMatrix(config);
  size_t filled = 0;
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j)
      if (!(m.At(i, j).lo == 0.0 && m.At(i, j).hi == 0.0)) ++filled;
  EXPECT_NEAR(static_cast<double>(filled) /
                  static_cast<double>(m.rows() * m.cols()),
              0.27, 0.04);
}

TEST(CategoryRangeTest, IntervalDensityOnFilledCells) {
  CategoryRangeConfig config;
  config.num_users = 300;
  config.interval_density = 0.45;
  const IntervalMatrix m = GenerateCategoryRangeMatrix(config);
  size_t filled = 0, ranged = 0;
  for (size_t i = 0; i < m.rows(); ++i)
    for (size_t j = 0; j < m.cols(); ++j) {
      const Interval cell = m.At(i, j);
      if (cell.lo == 0.0 && cell.hi == 0.0) continue;
      ++filled;
      if (cell.Span() > 0.0) ++ranged;
    }
  ASSERT_GT(filled, 0u);
  EXPECT_NEAR(static_cast<double>(ranged) / static_cast<double>(filled), 0.45,
              0.07);
}

}  // namespace
}  // namespace ivmf
