// Shared helpers for the ivmf test suite.

#ifndef IVMF_TESTS_TEST_UTIL_H_
#define IVMF_TESTS_TEST_UTIL_H_

#include <vector>

#include "base/rng.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf::testing {

// A dense matrix of uniform values in [lo, hi).
inline Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng, double lo = -1.0,
                           double hi = 1.0) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.Uniform(lo, hi);
  return m;
}

// A symmetric random matrix (A + Aᵀ) / 2.
inline Matrix RandomSymmetric(size_t n, Rng& rng) {
  Matrix a = RandomMatrix(n, n, rng);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < i; ++j) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

// A random proper interval matrix: base values in [lo, hi), spans in
// [0, max_span).
inline IntervalMatrix RandomIntervalMatrix(size_t rows, size_t cols, Rng& rng,
                                           double lo = 0.1, double hi = 1.0,
                                           double max_span = 0.5) {
  IntervalMatrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      const double base = rng.Uniform(lo, hi);
      m.Set(i, j, Interval(base, base + rng.Uniform(0.0, max_span)));
    }
  }
  return m;
}

// Max |A - B| entry.
inline double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  return (a - b).MaxAbs();
}

// Checks columns of `m` are orthonormal within tol; returns max deviation
// |MᵀM - I|.
inline double OrthonormalityError(const Matrix& m) {
  const Matrix gram = m.Transpose() * m;
  return MaxAbsDiff(gram, Matrix::Identity(m.cols()));
}

}  // namespace ivmf::testing

#endif  // IVMF_TESTS_TEST_UTIL_H_
