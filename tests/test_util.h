// Shared helpers for the ivmf test suite.

#ifndef IVMF_TESTS_TEST_UTIL_H_
#define IVMF_TESTS_TEST_UTIL_H_

#include <cctype>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "base/rng.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"

namespace ivmf::testing {

// A dense matrix of uniform values in [lo, hi).
inline Matrix RandomMatrix(size_t rows, size_t cols, Rng& rng, double lo = -1.0,
                           double hi = 1.0) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i)
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng.Uniform(lo, hi);
  return m;
}

// A symmetric random matrix (A + Aᵀ) / 2.
inline Matrix RandomSymmetric(size_t n, Rng& rng) {
  Matrix a = RandomMatrix(n, n, rng);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < i; ++j) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
  return a;
}

// A random proper interval matrix: base values in [lo, hi), spans in
// [0, max_span).
inline IntervalMatrix RandomIntervalMatrix(size_t rows, size_t cols, Rng& rng,
                                           double lo = 0.1, double hi = 1.0,
                                           double max_span = 0.5) {
  IntervalMatrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      const double base = rng.Uniform(lo, hi);
      m.Set(i, j, Interval(base, base + rng.Uniform(0.0, max_span)));
    }
  }
  return m;
}

// Max |A - B| entry.
inline double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  return (a - b).MaxAbs();
}

// Checks columns of `m` are orthonormal within tol; returns max deviation
// |MᵀM - I|.
inline double OrthonormalityError(const Matrix& m) {
  const Matrix gram = m.Transpose() * m;
  return MaxAbsDiff(gram, Matrix::Identity(m.cols()));
}

// -- Minimal JSON validator ---------------------------------------------------
//
// Recursive-descent checker for RFC 8259 JSON, enough to assert that the
// observability exporters (metrics snapshots, Chrome traces) and the bench
// JsonWriter emit output a real parser accepts — without adding a JSON
// library dependency. Validates structure only; on failure writes a short
// reason into *error.

namespace json_internal {

struct Cursor {
  std::string_view text;
  size_t pos = 0;
  std::string* error;

  bool Fail(const std::string& why) {
    if (error != nullptr && error->empty()) {
      *error = why + " at offset " + std::to_string(pos);
    }
    return false;
  }
  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }
  bool Peek(char& c) {
    if (pos >= text.size()) return false;
    c = text[pos];
    return true;
  }
};

inline bool ParseValue(Cursor& cur, int depth);

inline bool ParseString(Cursor& cur) {
  if (cur.pos >= cur.text.size() || cur.text[cur.pos] != '"') {
    return cur.Fail("expected string");
  }
  ++cur.pos;
  while (cur.pos < cur.text.size()) {
    const char c = cur.text[cur.pos];
    if (c == '"') {
      ++cur.pos;
      return true;
    }
    if (static_cast<unsigned char>(c) < 0x20) {
      return cur.Fail("raw control character in string");
    }
    if (c == '\\') {
      ++cur.pos;
      if (cur.pos >= cur.text.size()) return cur.Fail("truncated escape");
      const char e = cur.text[cur.pos];
      if (e == 'u') {
        for (int i = 1; i <= 4; ++i) {
          if (cur.pos + i >= cur.text.size() ||
              std::isxdigit(static_cast<unsigned char>(
                  cur.text[cur.pos + i])) == 0) {
            return cur.Fail("bad \\u escape");
          }
        }
        cur.pos += 4;
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                 e != 'n' && e != 'r' && e != 't') {
        return cur.Fail("bad escape character");
      }
    }
    ++cur.pos;
  }
  return cur.Fail("unterminated string");
}

inline bool ParseNumber(Cursor& cur) {
  const size_t start = cur.pos;
  if (cur.pos < cur.text.size() && cur.text[cur.pos] == '-') ++cur.pos;
  if (cur.pos >= cur.text.size() ||
      std::isdigit(static_cast<unsigned char>(cur.text[cur.pos])) == 0) {
    return cur.Fail("expected digit");
  }
  if (cur.text[cur.pos] == '0') {
    ++cur.pos;  // no leading zeros
  } else {
    while (cur.pos < cur.text.size() &&
           std::isdigit(static_cast<unsigned char>(cur.text[cur.pos]))) {
      ++cur.pos;
    }
  }
  if (cur.pos < cur.text.size() && cur.text[cur.pos] == '.') {
    ++cur.pos;
    if (cur.pos >= cur.text.size() ||
        std::isdigit(static_cast<unsigned char>(cur.text[cur.pos])) == 0) {
      return cur.Fail("expected fraction digits");
    }
    while (cur.pos < cur.text.size() &&
           std::isdigit(static_cast<unsigned char>(cur.text[cur.pos]))) {
      ++cur.pos;
    }
  }
  if (cur.pos < cur.text.size() &&
      (cur.text[cur.pos] == 'e' || cur.text[cur.pos] == 'E')) {
    ++cur.pos;
    if (cur.pos < cur.text.size() &&
        (cur.text[cur.pos] == '+' || cur.text[cur.pos] == '-')) {
      ++cur.pos;
    }
    if (cur.pos >= cur.text.size() ||
        std::isdigit(static_cast<unsigned char>(cur.text[cur.pos])) == 0) {
      return cur.Fail("expected exponent digits");
    }
    while (cur.pos < cur.text.size() &&
           std::isdigit(static_cast<unsigned char>(cur.text[cur.pos]))) {
      ++cur.pos;
    }
  }
  return cur.pos > start;
}

inline bool ParseLiteral(Cursor& cur, std::string_view literal) {
  if (cur.text.substr(cur.pos, literal.size()) != literal) {
    return cur.Fail("bad literal");
  }
  cur.pos += literal.size();
  return true;
}

inline bool ParseObject(Cursor& cur, int depth) {
  ++cur.pos;  // consume '{'
  cur.SkipWs();
  char c;
  if (cur.Peek(c) && c == '}') {
    ++cur.pos;
    return true;
  }
  for (;;) {
    cur.SkipWs();
    if (!ParseString(cur)) return false;
    cur.SkipWs();
    if (!cur.Peek(c) || c != ':') return cur.Fail("expected ':'");
    ++cur.pos;
    if (!ParseValue(cur, depth)) return false;
    cur.SkipWs();
    if (!cur.Peek(c)) return cur.Fail("unterminated object");
    if (c == '}') {
      ++cur.pos;
      return true;
    }
    if (c != ',') return cur.Fail("expected ',' or '}'");
    ++cur.pos;
  }
}

inline bool ParseArray(Cursor& cur, int depth) {
  ++cur.pos;  // consume '['
  cur.SkipWs();
  char c;
  if (cur.Peek(c) && c == ']') {
    ++cur.pos;
    return true;
  }
  for (;;) {
    if (!ParseValue(cur, depth)) return false;
    cur.SkipWs();
    if (!cur.Peek(c)) return cur.Fail("unterminated array");
    if (c == ']') {
      ++cur.pos;
      return true;
    }
    if (c != ',') return cur.Fail("expected ',' or ']'");
    ++cur.pos;
  }
}

inline bool ParseValue(Cursor& cur, int depth) {
  if (depth > 128) return cur.Fail("nesting too deep");
  cur.SkipWs();
  char c;
  if (!cur.Peek(c)) return cur.Fail("expected value");
  switch (c) {
    case '{':
      return ParseObject(cur, depth + 1);
    case '[':
      return ParseArray(cur, depth + 1);
    case '"':
      return ParseString(cur);
    case 't':
      return ParseLiteral(cur, "true");
    case 'f':
      return ParseLiteral(cur, "false");
    case 'n':
      return ParseLiteral(cur, "null");
    default:
      return ParseNumber(cur);
  }
}

}  // namespace json_internal

// True when `text` is one complete, well-formed JSON value. On failure the
// first problem is described in *error (when non-null).
inline bool ValidateJson(std::string_view text, std::string* error = nullptr) {
  json_internal::Cursor cur{text, 0, error};
  if (!json_internal::ParseValue(cur, 0)) return false;
  cur.SkipWs();
  if (cur.pos != text.size()) return cur.Fail("trailing characters");
  return true;
}

}  // namespace ivmf::testing

#endif  // IVMF_TESTS_TEST_UTIL_H_
