#include "io/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomIntervalMatrix;
using ::ivmf::testing::RandomMatrix;

TEST(CsvTest, MatrixRoundTripInMemory) {
  Rng rng(1);
  const Matrix m = RandomMatrix(5, 7, rng);
  const auto parsed = MatrixFromCsv(MatrixToCsv(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ApproxEquals(m, 1e-9));
}

TEST(CsvTest, IntervalMatrixRoundTripInMemory) {
  Rng rng(2);
  const IntervalMatrix m = RandomIntervalMatrix(4, 6, rng);
  const auto parsed = IntervalMatrixFromCsv(IntervalMatrixToCsv(m));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ApproxEquals(m, 1e-9));
}

TEST(CsvTest, ParsesHandWrittenScalarCsv) {
  const auto m = MatrixFromCsv("1, 2.5, -3\n4e-1, 5, 6\n");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->rows(), 2u);
  EXPECT_EQ(m->cols(), 3u);
  EXPECT_DOUBLE_EQ((*m)(0, 1), 2.5);
  EXPECT_DOUBLE_EQ((*m)(1, 0), 0.4);
}

TEST(CsvTest, ParsesMixedIntervalCells) {
  const auto m = IntervalMatrixFromCsv("1:2, 3\n-1.5:-0.5, 0:0\n");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->At(0, 0), Interval(1, 2));
  EXPECT_EQ(m->At(0, 1), Interval(3, 3));  // bare number = scalar interval
  EXPECT_EQ(m->At(1, 0), Interval(-1.5, -0.5));
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(MatrixFromCsv("1,2,3\n4,5\n").has_value());
  EXPECT_FALSE(IntervalMatrixFromCsv("1:2\n1:2,3:4\n").has_value());
}

TEST(CsvTest, RejectsGarbageCells) {
  EXPECT_FALSE(MatrixFromCsv("1,abc\n").has_value());
  EXPECT_FALSE(IntervalMatrixFromCsv("1:x\n").has_value());
  EXPECT_FALSE(IntervalMatrixFromCsv("1,\n").has_value());
}

TEST(CsvTest, RejectsMisorderedIntervals) {
  EXPECT_FALSE(IntervalMatrixFromCsv("5:1\n").has_value());
}

TEST(CsvTest, EmptyTextGivesEmptyMatrix) {
  const auto m = MatrixFromCsv("");
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->empty());
}

TEST(CsvTest, SkipsBlankLines) {
  const auto m = MatrixFromCsv("1,2\n\n  \n3,4\n");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->rows(), 2u);
}

TEST(CsvTest, FileRoundTrip) {
  Rng rng(3);
  const IntervalMatrix m = RandomIntervalMatrix(6, 4, rng);
  const std::string path = ::testing::TempDir() + "/ivmf_csv_test.csv";
  ASSERT_TRUE(SaveIntervalMatrixCsv(path, m));
  const auto loaded = LoadIntervalMatrixCsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->ApproxEquals(m, 1e-9));
  std::remove(path.c_str());
}

TEST(CsvTest, ScalarFileRoundTrip) {
  Rng rng(4);
  const Matrix m = RandomMatrix(3, 8, rng);
  const std::string path = ::testing::TempDir() + "/ivmf_csv_scalar.csv";
  ASSERT_TRUE(SaveMatrixCsv(path, m));
  const auto loaded = LoadMatrixCsv(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->ApproxEquals(m, 1e-9));
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadMatrixCsv("/nonexistent/path/x.csv").has_value());
  EXPECT_FALSE(LoadIntervalMatrixCsv("/nonexistent/path/x.csv").has_value());
}

TEST(CsvTest, PrecisionControlsDigits) {
  Matrix m(1, 1);
  m(0, 0) = 1.0 / 3.0;
  const std::string coarse = MatrixToCsv(m, 3);
  const std::string fine = MatrixToCsv(m, 15);
  EXPECT_LT(coarse.size(), fine.size());
  // Both still round-trip to within their precision.
  EXPECT_NEAR((*MatrixFromCsv(coarse))(0, 0), 1.0 / 3.0, 1e-3);
  EXPECT_NEAR((*MatrixFromCsv(fine))(0, 0), 1.0 / 3.0, 1e-14);
}

}  // namespace
}  // namespace ivmf
