// Randomized differential fuzzing of the sparse-kernel backends.
//
// Each trial draws a seed-reproducible random CSR matrix — fill anywhere
// from 0% to 100%, row lengths from several adversarial distributions
// (uniform, geometric-ish skew, everything-in-one-row, exact block
// multiples) — and asserts that the scalar reference, the AVX2 dispatch
// path, and the SELL-C-sigma pack agree on every kernel entry point.
// Failures print the trial seed, so any counterexample replays exactly.
//
// The suite is sized to stay fast under ASan/UBSan and TSan (CI runs it in
// both sanitizer legs): shapes cap at ~120 x 90 and 60 trials total.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "interval/interval_matrix.h"
#include "linalg/matrix.h"
#include "sparse/sparse_gram_operator.h"
#include "sparse/sparse_interval_matrix.h"
#include "sparse/sparse_kernels.h"

namespace ivmf {
namespace {

using Endpoint = SparseIntervalMatrix::Endpoint;

// Backend agreement tolerance: all backends sum the same per-row terms,
// differing only by blocked reassociation and FMA contraction.
void ExpectAgree(const std::vector<double>& got,
                 const std::vector<double>& want, const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    const double tol = 1e-12 * std::max(1.0, std::fabs(want[i]));
    ASSERT_LE(std::fabs(got[i] - want[i]), tol)
        << what << " entry " << i << ": " << got[i] << " vs " << want[i];
  }
}

void ExpectAgree(const Matrix& got, const Matrix& want,
                 const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (size_t i = 0; i < got.rows(); ++i) {
    for (size_t j = 0; j < got.cols(); ++j) {
      const double tol = 1e-12 * std::max(1.0, std::fabs(want(i, j)));
      ASSERT_LE(std::fabs(got(i, j) - want(i, j)), tol)
          << what << " (" << i << "," << j << ")";
    }
  }
}

// How a trial distributes nnz across rows.
enum class RowDist {
  kUniformFill,   // iid Bernoulli cells, fill drawn in [0, 1]
  kSkewed,        // row length ~ heavy head, long empty tail
  kOneHotRow,     // every nnz in a single row
  kBlockAligned,  // row lengths forced to multiples of 8 (no remainder lanes)
};

// Draws a random CSR directly (sorted unique columns per row), exercising
// FromCsr — the entry point the streaming snapshot path uses.
SparseIntervalMatrix RandomCsr(Rng& rng, size_t rows, size_t cols,
                               RowDist dist, bool non_negative) {
  std::vector<size_t> row_ptr(rows + 1, 0);
  std::vector<size_t> col_idx;
  std::vector<double> lo, hi;
  std::vector<uint8_t> pick(cols);
  const double uniform_fill = rng.Uniform();  // one fill per matrix, in [0,1)
  for (size_t i = 0; i < rows; ++i) {
    switch (dist) {
      case RowDist::kUniformFill: {
        for (size_t j = 0; j < cols; ++j) pick[j] = rng.Bernoulli(uniform_fill);
        break;
      }
      case RowDist::kSkewed: {
        // A few rows near-dense, most empty or nearly so.
        const double fill = rng.Bernoulli(0.15) ? rng.Uniform(0.6, 1.0)
                                                : rng.Uniform(0.0, 0.05);
        for (size_t j = 0; j < cols; ++j) pick[j] = rng.Bernoulli(fill);
        break;
      }
      case RowDist::kOneHotRow: {
        const size_t hot = rows == 0 ? 0 : rows / 2;
        for (size_t j = 0; j < cols; ++j) pick[j] = (i == hot);
        break;
      }
      case RowDist::kBlockAligned: {
        const size_t len = 8 * rng.UniformIndex(cols / 8 + 1);
        std::vector<size_t> order(cols);
        for (size_t j = 0; j < cols; ++j) order[j] = j;
        rng.Shuffle(order);
        std::fill(pick.begin(), pick.end(), 0);
        for (size_t k = 0; k < len; ++k) pick[order[k]] = 1;
        break;
      }
    }
    for (size_t j = 0; j < cols; ++j) {
      if (!pick[j]) continue;
      col_idx.push_back(j);
      const double a =
          non_negative ? rng.Uniform(0.0, 4.0) : rng.Uniform(-4.0, 4.0);
      lo.push_back(a);
      hi.push_back(a + rng.Uniform(0.0, 1.5));
    }
    row_ptr[i + 1] = col_idx.size();
  }
  return SparseIntervalMatrix::FromCsr(rows, cols, std::move(row_ptr),
                                       std::move(col_idx), std::move(lo),
                                       std::move(hi));
}

std::vector<double> RandomVector(Rng& rng, size_t n) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(-3.0, 3.0);
  return v;
}

// One trial: build the matrix once, clone per backend, compare every kernel
// against the scalar clone.
void RunTrial(uint64_t seed, RowDist dist) {
  Rng rng(seed);
  const size_t rows = 1 + rng.UniformIndex(120);
  const size_t cols = 1 + rng.UniformIndex(90);
  const bool non_negative = rng.Bernoulli(0.5);
  const SparseIntervalMatrix base =
      RandomCsr(rng, rows, cols, dist, non_negative);
  const std::string tag = "seed=" + std::to_string(seed) +
                          " shape=" + std::to_string(rows) + "x" +
                          std::to_string(cols);

  SparseIntervalMatrix scalar = base;
  scalar.set_kernel(spk::Backend::kScalar);
  const SparseIntervalMatrix scalar_t = scalar.Transpose();

  const std::vector<double> x = RandomVector(rng, cols);
  const std::vector<double> x2 = RandomVector(rng, cols);
  const std::vector<double> xt = RandomVector(rng, rows);
  Matrix b(cols, 5);
  for (size_t i = 0; i < cols; ++i) {
    for (size_t j = 0; j < 5; ++j) b(i, j) = rng.Uniform(-2.0, 2.0);
  }

  // Scalar reference outputs.
  std::vector<double> ref_lo, ref_hi, ref_mid, ref_t, ref_pair_lo,
      ref_pair_hi, ref_gram_lo, ref_gram_hi;
  scalar.Multiply(Endpoint::kLower, x, ref_lo);
  scalar.Multiply(Endpoint::kUpper, x, ref_hi);
  scalar.MultiplyMid(x, ref_mid);
  scalar.MultiplyTranspose(Endpoint::kLower, xt, ref_t);
  scalar.MultiplyPair(x, x2, ref_pair_lo, ref_pair_hi);
  const Matrix ref_dense = scalar.MultiplyDense(Endpoint::kUpper, b);
  const IntervalMatrix ref_iprod = scalar.IntervalMultiplyDense(b);
  const SparseGramOperator scalar_gram(scalar, scalar_t, Endpoint::kLower);
  scalar_gram.ApplyBoth(x, ref_gram_lo, ref_gram_hi);
  // The fused one-pass Gram on the scalar backend must agree with the
  // two-pass composition the operator runs there.
  {
    std::vector<double> fused_lo, fused_hi, fused_one;
    scalar.GramMultiplyBoth(x, fused_lo, fused_hi);
    ExpectAgree(fused_lo, ref_gram_lo, tag + "/scalar/gram_fused.lo");
    ExpectAgree(fused_hi, ref_gram_hi, tag + "/scalar/gram_fused.hi");
    scalar.GramMultiply(Endpoint::kLower, x, fused_one);
    ExpectAgree(fused_one, ref_gram_lo, tag + "/scalar/gram_fused.one");
  }

  for (spk::Backend backend : {spk::Backend::kAvx2, spk::Backend::kSell}) {
    SparseIntervalMatrix m = base;
    m.set_kernel(backend);
    const SparseIntervalMatrix mt = m.Transpose();
    const std::string what = tag + "/" + spk::BackendName(backend);

    std::vector<double> y, y2;
    m.Multiply(Endpoint::kLower, x, y);
    ExpectAgree(y, ref_lo, what + "/multiply.lo");
    m.Multiply(Endpoint::kUpper, x, y);
    ExpectAgree(y, ref_hi, what + "/multiply.hi");
    m.MultiplyMid(x, y);
    ExpectAgree(y, ref_mid, what + "/mid");
    m.MultiplyBoth(x, y, y2);
    ExpectAgree(y, ref_lo, what + "/both.lo");
    ExpectAgree(y2, ref_hi, what + "/both.hi");
    m.MultiplyPair(x, x2, y, y2);
    ExpectAgree(y, ref_pair_lo, what + "/pair.lo");
    ExpectAgree(y2, ref_pair_hi, what + "/pair.hi");
    m.MultiplyTranspose(Endpoint::kLower, xt, y);
    ExpectAgree(y, ref_t, what + "/transpose");
    ExpectAgree(m.MultiplyDense(Endpoint::kUpper, b), ref_dense,
                what + "/dense");
    const IntervalMatrix iprod = m.IntervalMultiplyDense(b);
    ExpectAgree(iprod.lower(), ref_iprod.lower(), what + "/iprod.lo");
    ExpectAgree(iprod.upper(), ref_iprod.upper(), what + "/iprod.hi");

    const SparseGramOperator gram(m, mt, Endpoint::kLower);
    gram.ApplyBoth(x, y, y2);
    ExpectAgree(y, ref_gram_lo, what + "/gram.lo");
    ExpectAgree(y2, ref_gram_hi, what + "/gram.hi");
    m.GramMultiplyBoth(x, y, y2);
    ExpectAgree(y, ref_gram_lo, what + "/gram_fused.lo");
    ExpectAgree(y2, ref_gram_hi, what + "/gram_fused.hi");
    m.GramMultiply(Endpoint::kLower, x, y);
    ExpectAgree(y, ref_gram_lo, what + "/gram_fused.one");
  }
}

TEST(SparseKernelFuzzTest, UniformFill) {
  for (uint64_t seed = 1000; seed < 1024; ++seed) {
    RunTrial(seed, RowDist::kUniformFill);
  }
}

TEST(SparseKernelFuzzTest, SkewedRowLengths) {
  for (uint64_t seed = 2000; seed < 2016; ++seed) {
    RunTrial(seed, RowDist::kSkewed);
  }
}

TEST(SparseKernelFuzzTest, AllNnzInOneRow) {
  for (uint64_t seed = 3000; seed < 3010; ++seed) {
    RunTrial(seed, RowDist::kOneHotRow);
  }
}

TEST(SparseKernelFuzzTest, BlockAlignedRowLengths) {
  for (uint64_t seed = 4000; seed < 4010; ++seed) {
    RunTrial(seed, RowDist::kBlockAligned);
  }
}

// Determinism across repeated calls: blocked kernels must be bit-stable
// call-to-call on the same matrix (the Lanczos three-term recurrence
// assumes the operator is a function).
TEST(SparseKernelFuzzTest, RepeatCallsBitStable) {
  Rng rng(777);
  const SparseIntervalMatrix base =
      RandomCsr(rng, 64, 48, RowDist::kUniformFill, false);
  const std::vector<double> x = RandomVector(rng, 48);
  for (spk::Backend backend :
       {spk::Backend::kScalar, spk::Backend::kAvx2, spk::Backend::kSell}) {
    SparseIntervalMatrix m = base;
    m.set_kernel(backend);
    std::vector<double> first, again;
    m.Multiply(Endpoint::kLower, x, first);
    for (int i = 0; i < 3; ++i) {
      m.Multiply(Endpoint::kLower, x, again);
      ASSERT_EQ(first, again) << spk::BackendName(backend);
    }
  }
}

}  // namespace
}  // namespace ivmf
