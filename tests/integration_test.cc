// End-to-end integration tests spanning multiple modules: the full
// experiment pipelines that the benchmark harness later scales up.

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "core/accuracy.h"
#include "core/isvd.h"
#include "data/anonymize.h"
#include "data/faces.h"
#include "data/ratings.h"
#include "data/synthetic.h"
#include "eval/kmeans.h"
#include "eval/knn.h"
#include "eval/metrics.h"
#include "factor/nmf.h"
#include "factor/pmf.h"
#include "test_util.h"

namespace ivmf {
namespace {

// ---------------------------------------------------------------------------
// Synthetic pipeline: generate -> decompose (all strategies) -> score.
// ---------------------------------------------------------------------------

TEST(SyntheticPipelineTest, AllStrategiesScoreOnDefaultConfig) {
  Rng rng(1);
  SyntheticConfig config;
  config.rows = 20;
  config.cols = 50;
  const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const GramEig gram = ComputeGramEig(m, 10, options);
  for (int strategy = 0; strategy <= 4; ++strategy) {
    const IsvdResult result =
        strategy <= 1 ? RunIsvd(strategy, m, 10, options)
        : strategy == 2
            ? Isvd2(m, 10, gram, options)
            : (strategy == 3 ? Isvd3(m, 10, gram, options)
                             : Isvd4(m, 10, gram, options));
    const AccuracyReport report =
        DecompositionAccuracy(m, result.Reconstruct());
    EXPECT_GT(report.harmonic_mean, 0.2) << "strategy " << strategy;
  }
}

TEST(SyntheticPipelineTest, Figure3AlignmentEffect) {
  // The Fig. 3 experiment in miniature: ILSA improves min/max factor
  // cosine alignment of independently decomposed endpoints.
  Rng rng(2);
  SyntheticConfig config;
  config.rows = 20;
  config.cols = 40;
  double before_sum = 0.0, after_sum = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    const IntervalMatrix m = GenerateUniformIntervalMatrix(config, rng);
    const SvdResult lo = ComputeSvd(m.lower(), 10);
    const SvdResult hi = ComputeSvd(m.upper(), 10);
    for (double c : ColumnwiseCosine(lo.v, hi.v)) before_sum += std::abs(c);
    const IlsaResult ilsa = ComputeIlsa(lo.v, hi.v);
    const Matrix aligned = ApplyIlsaToColumns(lo.v, ilsa);
    for (double c : ColumnwiseCosine(aligned, hi.v)) after_sum += std::abs(c);
  }
  EXPECT_GE(after_sum, before_sum - 1e-9);
}

// ---------------------------------------------------------------------------
// Anonymized pipeline (Figure 7 in miniature).
// ---------------------------------------------------------------------------

TEST(AnonymizedPipelineTest, DecompositionRecoversAnonymizedStructure) {
  Rng rng(3);
  const Matrix original = ivmf::testing::RandomMatrix(25, 30, rng, 0.0, 1.0);
  const IntervalMatrix anon = AnonymizeMatrix(original, MediumPrivacyMix(), rng);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const IsvdResult result = Isvd4(anon, 0, options);  // 100% rank
  const AccuracyReport report = DecompositionAccuracy(anon, result.Reconstruct());
  EXPECT_GT(report.harmonic_mean, 0.6);
}

TEST(AnonymizedPipelineTest, HigherPrivacyIsHarderAtLowRank) {
  Rng rng(4);
  const Matrix original = ivmf::testing::RandomMatrix(30, 40, rng, 0.0, 1.0);
  Rng rng_h(5), rng_l(5);
  const IntervalMatrix high = AnonymizeMatrix(original, HighPrivacyMix(), rng_h);
  const IntervalMatrix low = AnonymizeMatrix(original, LowPrivacyMix(), rng_l);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  // At full rank both reconstruct; the interval mass differs (high > low).
  EXPECT_GT(high.Span().Sum(), low.Span().Sum());
  const double h_high =
      DecompositionAccuracy(high, Isvd3(high, 0, options).Reconstruct())
          .harmonic_mean;
  const double h_low =
      DecompositionAccuracy(low, Isvd3(low, 0, options).Reconstruct())
          .harmonic_mean;
  EXPECT_GT(h_high, 0.3);
  EXPECT_GT(h_low, 0.3);
}

// ---------------------------------------------------------------------------
// Face pipeline (Figure 8 in miniature): decompose interval faces, classify
// with 1-NN on U x Sigma features, cluster with k-means.
// ---------------------------------------------------------------------------

class FacePipelineTest : public ::testing::Test {
 protected:
  static FaceCorpus MakeCorpus() {
    FaceCorpusConfig config;
    config.num_individuals = 8;
    config.images_per_individual = 6;
    config.width = 10;
    config.height = 10;
    return GenerateFaceCorpus(config);
  }
};

TEST_F(FacePipelineTest, IsvdFeaturesClassifyIndividuals) {
  const FaceCorpus corpus = MakeCorpus();
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.gram_side = GramSide::kAuto;
  const IsvdResult result = Isvd2(corpus.intervals, 10, options);

  // Features: U * Σ (scalar for target b), split into train/test rows.
  Matrix features = result.ScalarU();
  for (size_t i = 0; i < features.rows(); ++i)
    for (size_t j = 0; j < features.cols(); ++j)
      features(i, j) *= result.sigma[j].Mid();

  // Odd rows train, even rows test.
  std::vector<int> train_rows, test_rows;
  for (size_t i = 0; i < features.rows(); ++i)
    (i % 2 == 0 ? train_rows : test_rows).push_back(static_cast<int>(i));
  Matrix train(train_rows.size(), features.cols());
  Matrix test(test_rows.size(), features.cols());
  std::vector<int> train_labels, test_labels;
  for (size_t i = 0; i < train_rows.size(); ++i) {
    train.SetRow(i, features.Row(train_rows[i]));
    train_labels.push_back(corpus.labels[train_rows[i]]);
  }
  for (size_t i = 0; i < test_rows.size(); ++i) {
    test.SetRow(i, features.Row(test_rows[i]));
    test_labels.push_back(corpus.labels[test_rows[i]]);
  }

  const std::vector<int> predicted = Classify1Nn(train, train_labels, test);
  // Blob faces are clearly separable: expect strong F1.
  EXPECT_GT(MacroF1(test_labels, predicted), 0.7);
}

TEST_F(FacePipelineTest, ClusteringFindsIndividuals) {
  const FaceCorpus corpus = MakeCorpus();
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  options.gram_side = GramSide::kAuto;
  const IsvdResult result = Isvd2(corpus.intervals, 10, options);
  Matrix features = result.ScalarU();
  for (size_t i = 0; i < features.rows(); ++i)
    for (size_t j = 0; j < features.cols(); ++j)
      features(i, j) *= result.sigma[j].Mid();
  KMeansOptions kopts;
  kopts.k = 8;
  kopts.restarts = 5;
  const KMeansResult clusters = KMeans(features, kopts);
  EXPECT_GT(NormalizedMutualInformation(corpus.labels, clusters.assignments),
            0.5);
}

TEST_F(FacePipelineTest, NmfBaselineRunsOnFaces) {
  const FaceCorpus corpus = MakeCorpus();
  NmfOptions options;
  options.max_iterations = 60;
  const NmfResult nmf = ComputeNmf(corpus.images, 10, options);
  const double rel = (nmf.Reconstruct() - corpus.images).FrobeniusNorm() /
                     corpus.images.FrobeniusNorm();
  EXPECT_LT(rel, 0.5);
}

// ---------------------------------------------------------------------------
// Collaborative filtering pipeline (Figure 10 in miniature).
// ---------------------------------------------------------------------------

TEST(CfPipelineTest, AiPmfPredictsHeldOutRatings) {
  RatingsConfig config;
  config.num_users = 50;
  config.num_items = 60;
  config.fill = 0.4;
  const RatingsData data = GenerateRatings(config);
  const IntervalMatrix cf = CfIntervalMatrix(data, 0.3);
  Rng rng(6);
  const CfSplit split = SplitRatings(data, 0.2, rng);

  PmfOptions options;
  options.epochs = 150;
  const IntervalPmfResult model =
      ComputeAlignedIntervalPmf(cf, split.train_mask, 6, options);
  const double rmse =
      MaskedRmse(data.ratings, model.PredictMid(), split.test_mask);
  // Ratings live on a 1..5 scale; random guessing lands near ~1.6 RMSE.
  EXPECT_LT(rmse, 1.4);
}

TEST(CfPipelineTest, UserGenreReconstructionPipeline) {
  RatingsConfig config;
  config.num_users = 60;
  config.num_items = 90;
  config.num_genres = 8;
  config.fill = 0.3;
  const RatingsData data = GenerateRatings(config);
  const IntervalMatrix ug = UserGenreIntervalMatrix(data);
  IsvdOptions options;
  options.target = DecompositionTarget::kB;
  const IsvdResult result = Isvd4(ug, 0, options);
  const AccuracyReport report = DecompositionAccuracy(ug, result.Reconstruct());
  EXPECT_GT(report.harmonic_mean, 0.5);
}

}  // namespace
}  // namespace ivmf
