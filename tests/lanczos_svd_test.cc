// Tests for the Golub–Kahan–Lanczos bidiagonalization SVD: agreement with
// the one-sided Jacobi solver, truncation, and — critically for the sparse
// ISVD path — the Krylov-breakdown restart treatment on rank-deficient
// operators (a regression guard next to the symmetric-Lanczos one in
// lanczos_test.cc).

#include "linalg/lanczos_svd.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "linalg/svd.h"
#include "sparse/sparse_gram_operator.h"
#include "sparse/sparse_interval_matrix.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::MaxAbsDiff;
using ::ivmf::testing::OrthonormalityError;
using ::ivmf::testing::RandomMatrix;

TEST(LanczosSvdTest, FullDecompositionMatchesJacobiSvd) {
  Rng rng(11);
  const Matrix a = RandomMatrix(14, 9, rng, -2.0, 2.0);
  const SvdResult gkl = ComputeLanczosSvd(a, 0);
  const SvdResult jacobi = ComputeSvd(a);
  ASSERT_EQ(gkl.sigma.size(), jacobi.sigma.size());
  for (size_t j = 0; j < gkl.sigma.size(); ++j)
    EXPECT_NEAR(gkl.sigma[j], jacobi.sigma[j], 1e-9);
  // Random spectra are simple, so canonicalized factors agree columnwise.
  EXPECT_LT(MaxAbsDiff(gkl.u, jacobi.u), 1e-8);
  EXPECT_LT(MaxAbsDiff(gkl.v, jacobi.v), 1e-8);
  EXPECT_LT(MaxAbsDiff(gkl.Reconstruct(), a), 1e-9);
}

TEST(LanczosSvdTest, WideMatrixMatchesJacobiSvd) {
  Rng rng(12);
  const Matrix a = RandomMatrix(8, 17, rng, -1.0, 1.0);
  const SvdResult gkl = ComputeLanczosSvd(a, 0);
  const SvdResult jacobi = ComputeSvd(a);
  ASSERT_EQ(gkl.sigma.size(), 8u);
  for (size_t j = 0; j < gkl.sigma.size(); ++j)
    EXPECT_NEAR(gkl.sigma[j], jacobi.sigma[j], 1e-9);
  EXPECT_LT(MaxAbsDiff(gkl.Reconstruct(), a), 1e-9);
  EXPECT_LT(OrthonormalityError(gkl.u), 1e-9);
  EXPECT_LT(OrthonormalityError(gkl.v), 1e-9);
}

TEST(LanczosSvdTest, TruncatedRankMatchesLeadingJacobiTriplets) {
  Rng rng(13);
  // Exactly rank-5 matrix: the truncated solver must nail the spectrum.
  const Matrix b = RandomMatrix(30, 5, rng);
  const Matrix c = RandomMatrix(5, 18, rng);
  const Matrix a = b * c;
  const SvdResult gkl = ComputeLanczosSvd(a, 3);
  const SvdResult jacobi = ComputeSvd(a, 3);
  ASSERT_EQ(gkl.sigma.size(), 3u);
  for (size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(gkl.sigma[j], jacobi.sigma[j], 1e-8);
  EXPECT_LT(MaxAbsDiff(gkl.u, jacobi.u), 1e-7);
  EXPECT_LT(MaxAbsDiff(gkl.v, jacobi.v), 1e-7);
}

TEST(LanczosSvdTest, BreakdownRestartDeliversRequestedCountBeyondRank) {
  // Regression guard for the Krylov-breakdown restart: an exactly rank-3
  // matrix asked for 7 triplets breaks down once the singular-invariant
  // subspace is exhausted and must restart until the full count exists —
  // the ISVD0/ISVD1 lower/upper pairing depends on it. Zero-sigma U columns
  // are zero vectors (the ComputeSvd convention), so orthonormality is
  // checked on the genuine triplets and on V (whose columns stay unit).
  Rng rng(14);
  const Matrix a = RandomMatrix(25, 3, rng) * RandomMatrix(3, 16, rng);
  const SvdResult gkl = ComputeLanczosSvd(a, 7);
  const SvdResult jacobi = ComputeSvd(a, 7);
  ASSERT_EQ(gkl.sigma.size(), 7u);
  for (size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(gkl.sigma[j], jacobi.sigma[j], 1e-8);
  // The zero tail is a sqrt of eps-level Ritz mass: O(sqrt(eps) * sigma_0).
  for (size_t j = 3; j < 7; ++j) EXPECT_NEAR(gkl.sigma[j], 0.0, 1e-6);
  EXPECT_LT(OrthonormalityError(gkl.u.ColBlock(0, 3)), 1e-8);
  EXPECT_LT(OrthonormalityError(gkl.v), 1e-8);
}

TEST(LanczosSvdTest, ZeroOperatorRestartsToFullRequestedBasis) {
  // The all-zero matrix (the lower endpoint of [0, x] interval data): every
  // left step breaks down immediately; the restart path must still hand
  // back the requested width — zero singular values, zero U columns (the
  // ComputeSvd convention) and an orthonormal V.
  const Matrix a(20, 12);
  const SvdResult gkl = ComputeLanczosSvd(a, 5);
  ASSERT_EQ(gkl.sigma.size(), 5u);
  for (const double s : gkl.sigma) EXPECT_NEAR(s, 0.0, 1e-12);
  EXPECT_LT(gkl.u.MaxAbs(), 1e-10);
  EXPECT_LT(OrthonormalityError(gkl.v), 1e-10);
}

TEST(LanczosSvdTest, DuplicateSingularValuesReconstructExactly) {
  // diag(A, A) duplicates every singular value; the per-cluster basis is
  // not unique, so compare the (invariant) reconstruction and the values.
  Rng rng(15);
  const Matrix a = RandomMatrix(7, 5, rng, -1.5, 1.5);
  Matrix block(14, 10);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      block(i, j) = a(i, j);
      block(7 + i, 5 + j) = a(i, j);
    }
  }
  const SvdResult gkl = ComputeLanczosSvd(block, 0);
  const SvdResult jacobi = ComputeSvd(block);
  ASSERT_EQ(gkl.sigma.size(), 10u);
  for (size_t j = 0; j < 10; ++j)
    EXPECT_NEAR(gkl.sigma[j], jacobi.sigma[j], 1e-9);
  EXPECT_LT(MaxAbsDiff(gkl.Reconstruct(), block), 1e-8);
}

TEST(LanczosSvdTest, SparseEndpointMapMatchesDenseOperator) {
  // The three Parts of SparseEndpointMap act exactly like the materialized
  // endpoint / midpoint matrices.
  Rng rng(16);
  IntervalMatrix dense(9, 13);
  for (size_t i = 0; i < 9; ++i) {
    for (size_t j = 0; j < 13; ++j) {
      if (rng.Uniform() < 0.5) continue;
      const double base = rng.Uniform(-1.0, 1.0);
      dense.Set(i, j, Interval(base, base + rng.Uniform(0.0, 0.5)));
    }
  }
  const SparseIntervalMatrix sparse = SparseIntervalMatrix::FromDense(dense);
  const SparseIntervalMatrix sparse_t = sparse.Transpose();

  const Matrix mid = dense.Mid();
  const struct {
    SparseEndpointMap::Part part;
    const Matrix& reference;
  } cases[] = {
      {SparseEndpointMap::Part::kLower, dense.lower()},
      {SparseEndpointMap::Part::kUpper, dense.upper()},
      {SparseEndpointMap::Part::kMid, mid},
  };
  std::vector<double> x(13), xt(9), y, y_ref;
  for (double& v : x) v = rng.Uniform(-1.0, 1.0);
  for (double& v : xt) v = rng.Uniform(-1.0, 1.0);
  for (const auto& c : cases) {
    const SparseEndpointMap map(sparse, sparse_t, c.part);
    const DenseLinearMap ref(c.reference);
    map.Apply(x, y);
    ref.Apply(x, y_ref);
    for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
    map.ApplyTranspose(xt, y);
    ref.ApplyTranspose(xt, y_ref);
    for (size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
  }
}

TEST(LanczosSvdTest, DeterministicForSeed) {
  Rng rng(17);
  const Matrix a = RandomMatrix(12, 8, rng);
  const SvdResult first = ComputeLanczosSvd(a, 4);
  const SvdResult second = ComputeLanczosSvd(a, 4);
  EXPECT_EQ(0.0, MaxAbsDiff(first.u, second.u));
  EXPECT_EQ(0.0, MaxAbsDiff(first.v, second.v));
}

TEST(LanczosSvdTest, RestartExhaustionIsSurfacedAsTruncation) {
  // Same regression as the eigensolver's (see lanczos_test.cc): breakdown
  // on an exactly rank-2 matrix with an unsatisfiable restart threshold
  // used to silently shorten the returned triplet list.
  Rng rng(400);
  const Matrix left = RandomMatrix(14, 2, rng);
  const Matrix right = RandomMatrix(9, 2, rng);
  const Matrix a = left * right.Transpose();  // rank 2, 14 x 9

  LanczosOptions strict;
  strict.restart_tolerance = 1e9;
  const SvdResult truncated = ComputeLanczosSvd(a, 5, strict);
  EXPECT_TRUE(truncated.truncated);
  EXPECT_LT(truncated.sigma.size(), 5u);
  const SvdResult exact = ComputeSvd(a, 2);
  ASSERT_GE(truncated.sigma.size(), 2u);
  EXPECT_NEAR(truncated.sigma[0], exact.sigma[0], 1e-8);
  EXPECT_NEAR(truncated.sigma[1], exact.sigma[1], 1e-8);

  const SvdResult full = ComputeLanczosSvd(a, 5);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(full.sigma.size(), 5u);
}

TEST(LanczosSvdTest, WarmStartFromRightBasisConvergesNoSlower) {
  Rng rng(401);
  const Matrix left = RandomMatrix(50, 5, rng);
  const Matrix right = RandomMatrix(30, 5, rng);
  Matrix a = left * right.Transpose();

  LanczosOptions cold;
  cold.convergence_tol = 1e-10;
  const SvdResult first = ComputeLanczosSvd(a, 3, cold);
  ASSERT_EQ(first.sigma.size(), 3u);

  Rng perturb(402);
  for (size_t i = 0; i < a.rows(); ++i)
    for (size_t j = 0; j < a.cols(); ++j) a(i, j) += perturb.Uniform(0.0, 1e-3);

  const SvdResult recold = ComputeLanczosSvd(a, 3, cold);
  LanczosOptions warm = cold;
  warm.start_basis = first.v;  // previous right singular vectors
  const SvdResult rewarm = ComputeLanczosSvd(a, 3, warm);

  EXPECT_LE(rewarm.iterations, recold.iterations);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(rewarm.sigma[j], recold.sigma[j],
                1e-8 * (recold.sigma[0] + 1.0));
  }
}

}  // namespace
}  // namespace ivmf
