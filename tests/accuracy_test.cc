#include "core/accuracy.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"
#include "test_util.h"

namespace ivmf {
namespace {

using ::ivmf::testing::RandomIntervalMatrix;

TEST(HarmonicMeanTest, EqualValues) {
  EXPECT_DOUBLE_EQ(HarmonicMean(0.8, 0.8), 0.8);
}

TEST(HarmonicMeanTest, KnownValue) {
  EXPECT_NEAR(HarmonicMean(1.0, 0.5), 2.0 / 3.0, 1e-12);
}

TEST(HarmonicMeanTest, ZeroDominates) {
  EXPECT_DOUBLE_EQ(HarmonicMean(0.0, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicMean(0.0, 0.0), 0.0);
}

TEST(HarmonicMeanTest, BoundedByMin) {
  // HM(a,b) <= min(a,b) ... actually HM <= geometric <= arithmetic, and
  // HM <= 2*min; it is <= min only when values are equal. Check the true
  // bound: min <= ... no — HM is <= both? HM(1, 0.5)=0.667 > 0.5. The valid
  // property: min(a,b) <= HM is false; HM lies between min and max.
  const double hm = HarmonicMean(0.3, 0.9);
  EXPECT_GE(hm, 0.3);
  EXPECT_LE(hm, 0.9);
}

TEST(RelativeFrobeniusTest, IdenticalMatricesGiveZero) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(RelativeFrobenius(m, m), 0.0);
}

TEST(RelativeFrobeniusTest, KnownRatio) {
  const Matrix a = Matrix::FromRows({{3, 4}});  // norm 5
  const Matrix b = Matrix::FromRows({{0, 0}});
  EXPECT_DOUBLE_EQ(RelativeFrobenius(a, b), 1.0);
}

TEST(RelativeFrobeniusTest, ZeroReferenceHandling) {
  const Matrix zero(2, 2);
  EXPECT_DOUBLE_EQ(RelativeFrobenius(zero, zero), 0.0);
  EXPECT_TRUE(std::isinf(
      RelativeFrobenius(zero, Matrix::FromRows({{1, 0}, {0, 0}}))));
}

TEST(DecompositionAccuracyTest, PerfectReconstruction) {
  Rng rng(1);
  const IntervalMatrix m = RandomIntervalMatrix(5, 7, rng);
  const AccuracyReport report = DecompositionAccuracy(m, m);
  EXPECT_DOUBLE_EQ(report.harmonic_mean, 1.0);
  EXPECT_DOUBLE_EQ(report.theta_min, 1.0);
  EXPECT_DOUBLE_EQ(report.theta_max, 1.0);
}

TEST(DecompositionAccuracyTest, CompleteMissGivesZero) {
  Rng rng(2);
  const IntervalMatrix m = RandomIntervalMatrix(5, 7, rng, 1.0, 2.0);
  // Reconstruction at 3x the magnitude: delta > 1 -> theta clamped to 0.
  const IntervalMatrix bad(m.lower() * 4.0, m.upper() * 4.0);
  const AccuracyReport report = DecompositionAccuracy(m, bad);
  EXPECT_DOUBLE_EQ(report.harmonic_mean, 0.0);
}

TEST(DecompositionAccuracyTest, ThetaIsClampedAtZero) {
  const IntervalMatrix m(Matrix::FromRows({{1.0}}), Matrix::FromRows({{1.0}}));
  const IntervalMatrix far(Matrix::FromRows({{10.0}}),
                           Matrix::FromRows({{10.0}}));
  const AccuracyReport report = DecompositionAccuracy(m, far);
  EXPECT_DOUBLE_EQ(report.theta_min, 0.0);
  EXPECT_GE(report.delta_min, 1.0);
}

TEST(DecompositionAccuracyTest, AsymmetricEndpointErrors) {
  // Perfect lower endpoint, half-off upper endpoint.
  const Matrix lo = Matrix::FromRows({{2.0, 0.0}});
  const Matrix hi = Matrix::FromRows({{4.0, 0.0}});
  const IntervalMatrix original(lo, hi);
  const IntervalMatrix recon(lo, Matrix::FromRows({{2.0, 0.0}}));
  const AccuracyReport report = DecompositionAccuracy(original, recon);
  EXPECT_DOUBLE_EQ(report.theta_min, 1.0);
  EXPECT_DOUBLE_EQ(report.theta_max, 0.5);  // ||4-2||/||4|| = 0.5
  EXPECT_NEAR(report.harmonic_mean, HarmonicMean(1.0, 0.5), 1e-12);
}

TEST(DecompositionAccuracyTest, BetterReconstructionScoresHigher) {
  Rng rng(3);
  const IntervalMatrix m = RandomIntervalMatrix(6, 6, rng, 0.5, 1.5);
  Matrix noise_small(6, 6), noise_large(6, 6);
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 6; ++j) {
      noise_small(i, j) = 0.01 * rng.Normal();
      noise_large(i, j) = 0.3 * rng.Normal();
    }
  const IntervalMatrix close(m.lower() + noise_small, m.upper() + noise_small);
  const IntervalMatrix far(m.lower() + noise_large, m.upper() + noise_large);
  EXPECT_GT(DecompositionAccuracy(m, close).harmonic_mean,
            DecompositionAccuracy(m, far).harmonic_mean);
}

}  // namespace
}  // namespace ivmf
