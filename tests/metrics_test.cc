#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace ivmf {
namespace {

TEST(AccuracyTest, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {4, 5, 6}), 0.0);
}

TEST(AccuracyTest, Partial) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3, 4}, {1, 2, 0, 0}), 0.5);
}

TEST(AccuracyTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(MacroF1Test, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 0, 1}, {0, 1, 0, 1}), 1.0);
}

TEST(MacroF1Test, AllWrong) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 0}, {1, 1}), 0.0);
}

TEST(MacroF1Test, KnownBinaryCase) {
  // truth:   1 1 1 0 0
  // pred:    1 1 0 0 1
  // class 1: tp=2 fp=1 fn=1 -> F1 = 2*2/(4+1+1) = 4/6
  // class 0: tp=1 fp=1 fn=1 -> F1 = 2/(2+1+1) = 0.5
  const double f1 = MacroF1({1, 1, 1, 0, 0}, {1, 1, 0, 0, 1});
  EXPECT_NEAR(f1, 0.5 * (4.0 / 6.0 + 0.5), 1e-12);
}

TEST(MacroF1Test, ClassImbalanceWeighsClassesEqually) {
  // 9 of class 0 correct, 1 of class 1 wrong -> macro punishes class 1.
  std::vector<int> truth(10, 0);
  truth[9] = 1;
  std::vector<int> pred(10, 0);
  const double f1 = MacroF1(truth, pred);
  // class 0: tp=9, fp=1, fn=0 -> 18/19; class 1: 0.
  EXPECT_NEAR(f1, 0.5 * 18.0 / 19.0, 1e-12);
}

TEST(MicroF1Test, EqualsAccuracy) {
  const std::vector<int> truth{1, 2, 3, 1};
  const std::vector<int> pred{1, 2, 0, 0};
  EXPECT_DOUBLE_EQ(MicroF1(truth, pred), Accuracy(truth, pred));
}

TEST(NmiTest, IdenticalPartitionsGiveOne) {
  EXPECT_NEAR(NormalizedMutualInformation({0, 0, 1, 1, 2, 2},
                                          {0, 0, 1, 1, 2, 2}),
              1.0, 1e-12);
}

TEST(NmiTest, RelabeledPartitionsGiveOne) {
  // NMI is invariant to label names.
  EXPECT_NEAR(NormalizedMutualInformation({0, 0, 1, 1}, {5, 5, 9, 9}), 1.0,
              1e-12);
}

TEST(NmiTest, IndependentPartitionsGiveZero) {
  // Perfectly crossed: each cluster of `a` splits evenly across `b`.
  EXPECT_NEAR(NormalizedMutualInformation({0, 0, 1, 1}, {0, 1, 0, 1}), 0.0,
              1e-12);
}

TEST(NmiTest, PartialOverlapIsBetweenZeroAndOne) {
  const double nmi =
      NormalizedMutualInformation({0, 0, 1, 1, 2, 2}, {0, 0, 1, 2, 2, 2});
  EXPECT_GT(nmi, 0.0);
  EXPECT_LT(nmi, 1.0);
}

TEST(NmiTest, SymmetricInArguments) {
  const std::vector<int> a{0, 1, 1, 2, 0, 2, 1};
  const std::vector<int> b{1, 1, 0, 2, 2, 0, 1};
  EXPECT_NEAR(NormalizedMutualInformation(a, b),
              NormalizedMutualInformation(b, a), 1e-12);
}

TEST(NmiTest, ConstantLabelingEdgeCases) {
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation({1, 1, 1}, {1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedMutualInformation({1, 1, 1}, {0, 1, 2}), 0.0);
}

TEST(NmiTest, FinerPartitionKeepsInformation) {
  // Splitting one true cluster into two still identifies the others.
  const double nmi =
      NormalizedMutualInformation({0, 0, 0, 0, 1, 1, 1, 1},
                                  {0, 0, 2, 2, 1, 1, 1, 1});
  EXPECT_GT(nmi, 0.5);
  EXPECT_LT(nmi, 1.0);
}

}  // namespace
}  // namespace ivmf
