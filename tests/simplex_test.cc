#include "lp/simplex.h"

#include <gtest/gtest.h>
#include "base/rng.h"

namespace ivmf {
namespace {

TEST(SimplexTest, SimpleMaximization) {
  // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> x=4, y=0, obj=12.
  LpProblem lp;
  lp.a = Matrix::FromRows({{1, 1}, {1, 3}});
  lp.b = {4, 6};
  lp.types = {LpConstraintType::kLessEqual, LpConstraintType::kLessEqual};
  lp.c = {3, 2};
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
}

TEST(SimplexTest, InteriorOptimum) {
  // max x + y  s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj=8/3.
  LpProblem lp;
  lp.a = Matrix::FromRows({{2, 1}, {1, 2}});
  lp.b = {4, 4};
  lp.types = {LpConstraintType::kLessEqual, LpConstraintType::kLessEqual};
  lp.c = {1, 1};
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 4.0 / 3.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraints) {
  // min x + y s.t. x + y >= 3, x <= 5, y <= 5 (as max of -(x+y)).
  LpProblem lp;
  lp.a = Matrix::FromRows({{1, 1}, {1, 0}, {0, 1}});
  lp.b = {3, 5, 5};
  lp.types = {LpConstraintType::kGreaterEqual, LpConstraintType::kLessEqual,
              LpConstraintType::kLessEqual};
  lp.c = {-1, -1};
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -3.0, 1e-9);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 3.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // max 2x + y s.t. x + y = 5, x <= 3 -> x=3, y=2, obj=8.
  LpProblem lp;
  lp.a = Matrix::FromRows({{1, 1}, {1, 0}});
  lp.b = {5, 3};
  lp.types = {LpConstraintType::kEqual, LpConstraintType::kLessEqual};
  lp.c = {2, 1};
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 8.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= 1 and x >= 2 simultaneously.
  LpProblem lp;
  lp.a = Matrix::FromRows({{1}, {1}});
  lp.b = {1, 2};
  lp.types = {LpConstraintType::kLessEqual, LpConstraintType::kGreaterEqual};
  lp.c = {1};
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // max x s.t. x >= 1 (no upper bound).
  LpProblem lp;
  lp.a = Matrix::FromRows({{1}});
  lp.b = {1};
  lp.types = {LpConstraintType::kGreaterEqual};
  lp.c = {1};
  EXPECT_EQ(SolveLp(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsIsNormalized) {
  // -x <= -2 means x >= 2; max -x -> x = 2.
  LpProblem lp;
  lp.a = Matrix::FromRows({{-1}, {1}});
  lp.b = {-2, 10};
  lp.types = {LpConstraintType::kLessEqual, LpConstraintType::kLessEqual};
  lp.c = {-1};
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateConstraintsTerminate) {
  // Classic degenerate vertex; Bland fallback must prevent cycling.
  LpProblem lp;
  lp.a = Matrix::FromRows({{0.5, -5.5, -2.5, 9.0},
                           {0.5, -1.5, -0.5, 1.0},
                           {1.0, 0.0, 0.0, 0.0}});
  lp.b = {0, 0, 1};
  lp.types = {LpConstraintType::kLessEqual, LpConstraintType::kLessEqual,
              LpConstraintType::kLessEqual};
  lp.c = {10, -57, -9, -24};
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-7);
}

TEST(SimplexTest, SolutionSatisfiesAllConstraints) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + trial % 4;
    const size_t m = 4 + trial % 5;
    LpProblem lp;
    lp.a = Matrix(m, n);
    for (size_t i = 0; i < m; ++i)
      for (size_t j = 0; j < n; ++j) lp.a(i, j) = rng.Uniform(0.1, 2.0);
    lp.b.assign(m, 10.0);
    lp.types.assign(m, LpConstraintType::kLessEqual);
    lp.c.assign(n, 0.0);
    for (size_t j = 0; j < n; ++j) lp.c[j] = rng.Uniform(0.1, 1.0);

    const LpSolution sol = SolveLp(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal);
    for (size_t i = 0; i < m; ++i) {
      double lhs = 0.0;
      for (size_t j = 0; j < n; ++j) lhs += lp.a(i, j) * sol.x[j];
      EXPECT_LE(lhs, lp.b[i] + 1e-7);
    }
    for (double x : sol.x) EXPECT_GE(x, -1e-9);
  }
}

TEST(SimplexTest, ObjectiveMatchesSolutionVector) {
  LpProblem lp;
  lp.a = Matrix::FromRows({{1, 2, 1}, {2, 1, 3}});
  lp.b = {10, 15};
  lp.types = {LpConstraintType::kLessEqual, LpConstraintType::kLessEqual};
  lp.c = {2, 3, 1};
  const LpSolution sol = SolveLp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  double dot = 0.0;
  for (size_t j = 0; j < 3; ++j) dot += lp.c[j] * sol.x[j];
  EXPECT_NEAR(dot, sol.objective, 1e-9);
}

}  // namespace
}  // namespace ivmf
