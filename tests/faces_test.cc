#include "data/faces.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace ivmf {
namespace {

FaceCorpusConfig SmallConfig() {
  FaceCorpusConfig config;
  config.num_individuals = 6;
  config.images_per_individual = 4;
  config.width = 8;
  config.height = 8;
  return config;
}

TEST(FaceCorpusTest, DimensionsMatchConfig) {
  const FaceCorpus corpus = GenerateFaceCorpus(SmallConfig());
  EXPECT_EQ(corpus.images.rows(), 24u);
  EXPECT_EQ(corpus.images.cols(), 64u);
  EXPECT_EQ(corpus.labels.size(), 24u);
  EXPECT_EQ(corpus.intervals.rows(), 24u);
  EXPECT_EQ(corpus.intervals.cols(), 64u);
}

TEST(FaceCorpusTest, PixelsInUnitRange) {
  const FaceCorpus corpus = GenerateFaceCorpus(SmallConfig());
  for (size_t i = 0; i < corpus.images.rows(); ++i)
    for (size_t j = 0; j < corpus.images.cols(); ++j) {
      EXPECT_GE(corpus.images(i, j), 0.0);
      EXPECT_LE(corpus.images(i, j), 1.0);
    }
}

TEST(FaceCorpusTest, LabelsCoverAllIndividuals) {
  const FaceCorpus corpus = GenerateFaceCorpus(SmallConfig());
  std::set<int> labels(corpus.labels.begin(), corpus.labels.end());
  EXPECT_EQ(labels.size(), 6u);
  // Each individual has exactly images_per_individual rows.
  for (int person = 0; person < 6; ++person) {
    size_t count = 0;
    for (int l : corpus.labels)
      if (l == person) ++count;
    EXPECT_EQ(count, 4u);
  }
}

TEST(FaceCorpusTest, IntervalsContainPixelValues) {
  const FaceCorpus corpus = GenerateFaceCorpus(SmallConfig());
  EXPECT_TRUE(corpus.intervals.ContainsMatrix(corpus.images, 1e-12));
  EXPECT_TRUE(corpus.intervals.IsProper());
}

TEST(FaceCorpusTest, SameIndividualImagesAreMoreSimilar) {
  // Within-class distance should be below between-class distance on
  // average — otherwise classification tasks would be meaningless.
  FaceCorpusConfig config = SmallConfig();
  config.num_individuals = 8;
  const FaceCorpus corpus = GenerateFaceCorpus(config);
  double within = 0.0, between = 0.0;
  size_t within_count = 0, between_count = 0;
  for (size_t a = 0; a < corpus.images.rows(); ++a) {
    for (size_t b = a + 1; b < corpus.images.rows(); ++b) {
      double d = 0.0;
      for (size_t j = 0; j < corpus.images.cols(); ++j) {
        const double diff = corpus.images(a, j) - corpus.images(b, j);
        d += diff * diff;
      }
      if (corpus.labels[a] == corpus.labels[b]) {
        within += d;
        ++within_count;
      } else {
        between += d;
        ++between_count;
      }
    }
  }
  EXPECT_LT(within / within_count, between / between_count);
}

TEST(FaceCorpusTest, DeterministicForSeed) {
  const FaceCorpus a = GenerateFaceCorpus(SmallConfig());
  const FaceCorpus b = GenerateFaceCorpus(SmallConfig());
  EXPECT_TRUE(a.images == b.images);
}

TEST(FaceCorpusTest, DifferentSeedsDiffer) {
  FaceCorpusConfig config = SmallConfig();
  config.seed = 99;
  const FaceCorpus a = GenerateFaceCorpus(SmallConfig());
  const FaceCorpus b = GenerateFaceCorpus(config);
  EXPECT_FALSE(a.images == b.images);
}

TEST(NeighborhoodIntervalsTest, ConstantImageGivesZeroDelta) {
  // std of a constant neighborhood is zero -> degenerate intervals.
  Matrix images(1, 16, 0.5);
  const IntervalMatrix intervals =
      BuildNeighborhoodIntervals(images, 4, 4, 1, 1.0);
  EXPECT_DOUBLE_EQ(intervals.Span().MaxAbs(), 0.0);
}

TEST(NeighborhoodIntervalsTest, AlphaScalesDelta) {
  FaceCorpusConfig config = SmallConfig();
  const FaceCorpus corpus = GenerateFaceCorpus(config);
  const IntervalMatrix alpha1 = BuildNeighborhoodIntervals(
      corpus.images, config.width, config.height, 1, 1.0);
  const IntervalMatrix alpha2 = BuildNeighborhoodIntervals(
      corpus.images, config.width, config.height, 1, 2.0);
  // δ doubles exactly when α doubles.
  EXPECT_TRUE(
      (alpha2.Span() - alpha1.Span() * 2.0).MaxAbs() < 1e-12);
}

TEST(NeighborhoodIntervalsTest, HandKnownNeighborhood) {
  // 2x2 image, radius 1 => every neighborhood is the whole image.
  Matrix image(1, 4);
  image(0, 0) = 0.0;
  image(0, 1) = 1.0;
  image(0, 2) = 1.0;
  image(0, 3) = 0.0;
  const IntervalMatrix intervals =
      BuildNeighborhoodIntervals(image, 2, 2, 1, 1.0);
  // mean 0.5, var 0.25, std 0.5 for every pixel.
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(intervals.Span()(0, j), 1.0, 1e-12);  // 2 * std
  }
  EXPECT_NEAR(intervals.At(0, 0).lo, -0.5, 1e-12);
  EXPECT_NEAR(intervals.At(0, 0).hi, 0.5, 1e-12);
}

TEST(NeighborhoodIntervalsTest, LargerRadiusUsesWiderContext) {
  FaceCorpusConfig config = SmallConfig();
  const FaceCorpus corpus = GenerateFaceCorpus(config);
  const IntervalMatrix r1 = BuildNeighborhoodIntervals(
      corpus.images, config.width, config.height, 1, 1.0);
  const IntervalMatrix r2 = BuildNeighborhoodIntervals(
      corpus.images, config.width, config.height, 3, 1.0);
  // Wider neighborhoods average over more structure; total span typically
  // grows (more variance captured). Check it at least changes.
  EXPECT_FALSE(r1.Span().ApproxEquals(r2.Span(), 1e-12));
}

}  // namespace
}  // namespace ivmf
