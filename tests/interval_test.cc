#include "interval/interval.h"

#include <cmath>

#include <gtest/gtest.h>
#include "base/rng.h"

namespace ivmf {
namespace {

TEST(IntervalTest, DefaultIsScalarZero) {
  Interval a;
  EXPECT_DOUBLE_EQ(a.lo, 0.0);
  EXPECT_DOUBLE_EQ(a.hi, 0.0);
  EXPECT_TRUE(a.IsScalar());
}

TEST(IntervalTest, SpanAndMid) {
  const Interval a(1.0, 3.0);
  EXPECT_DOUBLE_EQ(a.Span(), 2.0);
  EXPECT_DOUBLE_EQ(a.Mid(), 2.0);
  EXPECT_DOUBLE_EQ(a.Radius(), 1.0);
}

TEST(IntervalTest, FromUnorderedSorts) {
  const Interval a = Interval::FromUnordered(3.0, -1.0);
  EXPECT_DOUBLE_EQ(a.lo, -1.0);
  EXPECT_DOUBLE_EQ(a.hi, 3.0);
}

TEST(IntervalTest, ContainsScalarAndInterval) {
  const Interval a(0.0, 10.0);
  EXPECT_TRUE(a.Contains(0.0));
  EXPECT_TRUE(a.Contains(10.0));
  EXPECT_FALSE(a.Contains(10.5));
  EXPECT_TRUE(a.Contains(Interval(2.0, 3.0)));
  EXPECT_FALSE(a.Contains(Interval(-1.0, 3.0)));
}

TEST(IntervalTest, AdditionDefinition) {
  // [1,2] + [10,20] = [11,22].
  const Interval c = Interval(1, 2) + Interval(10, 20);
  EXPECT_DOUBLE_EQ(c.lo, 11);
  EXPECT_DOUBLE_EQ(c.hi, 22);
}

TEST(IntervalTest, SubtractionDefinition) {
  // [1,2] - [10,20] = [1-20, 2-10] = [-19, -8].
  const Interval c = Interval(1, 2) - Interval(10, 20);
  EXPECT_DOUBLE_EQ(c.lo, -19);
  EXPECT_DOUBLE_EQ(c.hi, -8);
}

TEST(IntervalTest, MultiplicationPositive) {
  const Interval c = Interval(1, 2) * Interval(3, 4);
  EXPECT_DOUBLE_EQ(c.lo, 3);
  EXPECT_DOUBLE_EQ(c.hi, 8);
}

TEST(IntervalTest, MultiplicationMixedSigns) {
  // [-2, 3] * [-5, 4]: products {10, -8, -15, 12} -> [-15, 12].
  const Interval c = Interval(-2, 3) * Interval(-5, 4);
  EXPECT_DOUBLE_EQ(c.lo, -15);
  EXPECT_DOUBLE_EQ(c.hi, 12);
}

TEST(IntervalTest, ScalarMultiplicationSpanRule) {
  // span(s * b) == |s| * span(b) (Section 2.1).
  const Interval b(2.0, 5.0);
  EXPECT_DOUBLE_EQ((3.0 * b).Span(), 3.0 * b.Span());
  EXPECT_DOUBLE_EQ((-3.0 * b).Span(), 3.0 * b.Span());
}

TEST(IntervalTest, NegationFlips) {
  const Interval c = -Interval(1, 2);
  EXPECT_DOUBLE_EQ(c.lo, -2);
  EXPECT_DOUBLE_EQ(c.hi, -1);
}

TEST(IntervalTest, AdditionIsCommutativeAndAssociative) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Interval a = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    const Interval b = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    const Interval c = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    EXPECT_EQ(a + b, b + a);
    const Interval l = (a + b) + c;
    const Interval r = a + (b + c);
    EXPECT_NEAR(l.lo, r.lo, 1e-12);
    EXPECT_NEAR(l.hi, r.hi, 1e-12);
  }
}

TEST(IntervalTest, MultiplicationIsCommutative) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const Interval a = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    const Interval b = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    EXPECT_EQ(a * b, b * a);
  }
}

TEST(IntervalTest, MultiplicationContainsAllPointProducts) {
  // Fundamental soundness: x∈a, y∈b => x*y ∈ a*b.
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const Interval a = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    const Interval b = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    const Interval c = a * b;
    const double x = rng.Uniform(a.lo, a.hi);
    const double y = rng.Uniform(b.lo, b.hi);
    EXPECT_TRUE(c.Contains(x * y) || std::abs(x * y - c.lo) < 1e-12 ||
                std::abs(x * y - c.hi) < 1e-12);
  }
}

TEST(IntervalTest, AdditionContainsAllPointSums) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const Interval a = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    const Interval b = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    const double x = rng.Uniform(a.lo, a.hi);
    const double y = rng.Uniform(b.lo, b.hi);
    EXPECT_TRUE((a + b).Contains(x + y));
    EXPECT_TRUE((a - b).Contains(x - y));
  }
}

// Theorem 1 (Scalar Theorem for ×): the product of two non-zero intervals is
// scalar only when both operands are scalar.
TEST(IntervalTest, ScalarTheoremForMultiplication) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const double lo_a = rng.Uniform(0.1, 5.0);
    const double lo_b = rng.Uniform(0.1, 5.0);
    const Interval a(lo_a, lo_a + rng.Uniform(0.01, 1.0));  // proper interval
    const Interval b(lo_b, lo_b + rng.Uniform(0.01, 1.0));
    EXPECT_GT((a * b).Span(), 0.0);  // never scalar
  }
  // Scalar x scalar stays scalar.
  EXPECT_TRUE((Interval::Scalar(2.0) * Interval::Scalar(3.0)).IsScalar());
}

TEST(IntervalTest, MultiplicationBySubsetIsMonotone) {
  // Inclusion isotonicity: a' ⊆ a => a'*b ⊆ a*b.
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    const Interval a = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    const Interval b = Interval::FromUnordered(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
    const double shrink = rng.Uniform(0.0, 0.5);
    const Interval a_sub(a.lo + shrink * a.Span(), a.hi - shrink * a.Span());
    EXPECT_TRUE((a * b).Contains(a_sub * b));
  }
}

TEST(IntervalTest, NormalizedOrdersEndpoints) {
  const Interval misordered(5.0, 1.0);
  EXPECT_FALSE(misordered.IsProper());
  const Interval fixed = misordered.Normalized();
  EXPECT_TRUE(fixed.IsProper());
  EXPECT_DOUBLE_EQ(fixed.lo, 1.0);
  EXPECT_DOUBLE_EQ(fixed.hi, 5.0);
}

TEST(IntervalTest, IsScalarWithTolerance) {
  EXPECT_TRUE(Interval(1.0, 1.0 + 1e-12).IsScalar(1e-10));
  EXPECT_FALSE(Interval(1.0, 1.1).IsScalar(1e-10));
}

TEST(IntervalTest, CompoundAssignment) {
  Interval a(1, 2);
  a += Interval(1, 1);
  EXPECT_EQ(a, Interval(2, 3));
  a -= Interval(1, 1);
  EXPECT_EQ(a, Interval(1, 2));
}

}  // namespace
}  // namespace ivmf
